//! Per-computational-node state.
//!
//! A [`Worker`] owns one node's share of the graph: the vertex-value
//! segment, the adjacency store (push-side layout), the VE-BLOCK store
//! (b-pull layout; hybrid keeps both — the paper "stores edges twice"),
//! the gather store (pull baseline), the message spill buffer, the
//! active/responding flag vectors, and the endpoint into the network
//! fabric. The mode executors in [`crate::modes`] drive it superstep by
//! superstep.

use crate::bitset::BitSet;
use crate::config::{JobConfig, Mode};
use crate::metrics::StepReport;
use crate::program::{GraphInfo, VertexProgram};
use hybridgraph_graph::{BlockLayout, Edge, Graph, Partition, VertexId, WorkerId};
use hybridgraph_net::fabric::{Endpoint, Envelope};
use hybridgraph_net::packet::Packet;
use hybridgraph_net::wire::BatchKind;
use hybridgraph_obs::TraceShard;
use hybridgraph_storage::adjacency::AdjacencyStore;
use hybridgraph_storage::checkpoint::{CheckpointReader, CheckpointWriter};
use hybridgraph_storage::gather::GatherStore;
use hybridgraph_storage::lru::LruCache;
use hybridgraph_storage::msg_log::MsgLogWriter;
use hybridgraph_storage::msg_store::SpillBuffer;
use hybridgraph_storage::record::{decode_slice, encode_slice};
use hybridgraph_storage::value_store::ValueStore;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::Vfs;
use hybridgraph_storage::{AccessClass, IoSnapshot, Record};
use std::collections::HashMap;
use std::io;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Loading-phase measurements of one worker (Fig. 16 inputs).
#[derive(Clone, Debug, Default)]
pub struct WorkerLoadReport {
    /// Total loading wall seconds.
    pub wall_secs: f64,
    /// Wall seconds building the adjacency store.
    pub adj_secs: f64,
    /// Wall seconds building the VE-BLOCK store.
    pub veblock_secs: f64,
    /// I/O performed during loading.
    pub io: IoSnapshot,
    /// VE-BLOCK fragments on this worker.
    pub fragments: u64,
    /// Vblocks on this worker.
    pub vblocks: usize,
}

/// Online message accumulation — b-pull's per-block receive buffer `BR_i`
/// and the pull baseline's per-superstep inbox.
///
/// With a combiner, arriving messages merge immediately (memory bounded by
/// distinct destinations); without one they are listed (memory bounded by
/// in-degree mass — exactly the Eq. 5 vs Eq. 6 distinction).
pub enum MsgAccumulator<M> {
    /// Combined per destination.
    Combined(HashMap<u32, M>),
    /// Concatenate-only: raw list.
    List(Vec<(u32, M)>),
}

impl<M: Record> MsgAccumulator<M> {
    /// An empty accumulator; combining iff `combined`.
    pub fn new(combined: bool) -> Self {
        if combined {
            MsgAccumulator::Combined(HashMap::new())
        } else {
            MsgAccumulator::List(Vec::new())
        }
    }

    /// Accepts a batch of `(dst, msg)` pairs.
    pub fn accept(
        &mut self,
        pairs: Vec<(VertexId, M)>,
        combiner: Option<&dyn hybridgraph_net::Combiner<M>>,
    ) {
        match self {
            MsgAccumulator::Combined(map) => {
                let c = combiner.expect("combined accumulator requires combiner");
                for (dst, m) in pairs {
                    map.entry(dst.0)
                        .and_modify(|acc| *acc = c.combine(acc, &m))
                        .or_insert(m);
                }
            }
            MsgAccumulator::List(list) => {
                list.extend(pairs.into_iter().map(|(d, m)| (d.0, m)));
            }
        }
    }

    /// Total messages held.
    pub fn len(&self) -> usize {
        match self {
            MsgAccumulator::Combined(m) => m.len(),
            MsgAccumulator::List(l) => l.len(),
        }
    }

    /// True if no messages are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-memory footprint.
    pub fn memory_bytes(&self) -> u64 {
        self.len() as u64 * (4 + M::BYTES as u64)
    }

    /// Merges per-sender accumulators **in slot order** into one.
    ///
    /// Receiving threads see sender batches in whatever order the fabric
    /// delivers them; merging per-sender partials in a fixed order makes
    /// non-commutative float reductions (e.g. `f64` sums) bit-identical
    /// run to run — which is what lets recovery tests demand bit-equal
    /// values after a rollback.
    pub fn merge_in_order(
        parts: Vec<Self>,
        combiner: Option<&dyn hybridgraph_net::Combiner<M>>,
    ) -> Self {
        let combined = matches!(parts.first(), Some(MsgAccumulator::Combined(_)));
        let mut out = MsgAccumulator::new(combined);
        for part in parts {
            match (&mut out, part) {
                (MsgAccumulator::Combined(map), MsgAccumulator::Combined(p)) => {
                    let c = combiner.expect("combined merge requires combiner");
                    // Canonical per-part order: destination ascending.
                    let mut entries: Vec<(u32, M)> = p.into_iter().collect();
                    entries.sort_by_key(|(d, _)| *d);
                    for (d, m) in entries {
                        map.entry(d)
                            .and_modify(|acc| *acc = c.combine(acc, &m))
                            .or_insert(m);
                    }
                }
                (MsgAccumulator::List(list), MsgAccumulator::List(p)) => list.extend(p),
                _ => unreachable!("mixed accumulator kinds in merge"),
            }
        }
        out
    }

    /// Drains into per-destination groups, sorted by destination.
    pub fn into_groups(self) -> Vec<(u32, Vec<M>)> {
        match self {
            MsgAccumulator::Combined(map) => {
                let mut v: Vec<(u32, Vec<M>)> =
                    map.into_iter().map(|(d, m)| (d, vec![m])).collect();
                v.sort_by_key(|(d, _)| *d);
                v
            }
            MsgAccumulator::List(mut list) => {
                list.sort_by_key(|(d, _)| *d);
                let mut out: Vec<(u32, Vec<M>)> = Vec::new();
                for (d, m) in list {
                    match out.last_mut() {
                        Some((last, msgs)) if *last == d => msgs.push(m),
                        _ => out.push((d, vec![m])),
                    }
                }
                out
            }
        }
    }
}

/// MOCgraph-style online-computing state: hot vertices accumulate their
/// combined message in memory; cold vertices' messages spill.
pub struct HotSet<M> {
    /// Local-index bit per vertex: in the hot (memory-resident) set?
    pub hot: BitSet,
    /// `acc[local]` — the online-combined message, if any arrived.
    pub acc: Vec<Option<M>>,
}

impl<M: Record> HotSet<M> {
    /// Marks the `capacity` highest-in-degree local vertices hot
    /// (the paper's hot-aware placement for MOCgraph).
    pub fn new(local_in_degrees: &[u32], capacity: usize) -> Self {
        let n = local_in_degrees.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(local_in_degrees[i as usize]));
        let mut hot = BitSet::new(n);
        for &i in order.iter().take(capacity) {
            hot.set(i as usize);
        }
        HotSet {
            hot,
            acc: (0..n).map(|_| None).collect(),
        }
    }

    /// In-memory footprint of live accumulators.
    pub fn memory_bytes(&self) -> u64 {
        self.acc.iter().flatten().count() as u64 * (4 + M::BYTES as u64)
    }
}

/// Everything [`Worker::load`] needs, bundled into one struct so
/// spawning a worker stays a single-argument call (and stays clear of
/// the argument-count lint as recovery keeps growing the list).
pub struct WorkerSeed<'g, P: VertexProgram> {
    /// This worker's id.
    pub id: WorkerId,
    /// The algorithm.
    pub program: Arc<P>,
    /// The global input graph.
    pub graph: &'g Graph,
    /// Reverse graph (pull mode's mirror discovery), if required.
    pub reverse: Option<&'g Graph>,
    /// The cluster-wide partition.
    pub partition: Arc<Partition>,
    /// The cluster-wide Vblock layout.
    pub layout: Arc<BlockLayout>,
    /// Job configuration.
    pub cfg: JobConfig,
    /// Network attachment.
    pub ep: Endpoint,
    /// This worker's simulated disk.
    pub vfs: Arc<dyn Vfs>,
    /// Boundary/interior classification (`Async` mode only; `None`
    /// otherwise — strict modes never pay for it).
    pub classification: Option<Arc<crate::blockexec::BlockClassification>>,
}

/// In-memory pre-images captured at the start of a superstep so a
/// *surviving* worker can revert exactly one superstep during confined
/// recovery — no checkpoint reload, which is the whole point of
/// confinement (Pregel §4.2).
///
/// Flag vectors and online accumulators are cloned eagerly (they are
/// small); vertex-value pre-images are captured lazily by the executors
/// at the moment they read a value block anyway
/// ([`Worker::note_value_preimage`]), so the capture adds **zero** extra
/// reads. Spilled messages snapshot via the non-destructive
/// [`SpillBuffer::snapshot_pending`] rather than mark/rewind, because a
/// superstep that *completed* drained the spill and a rewind past a
/// drain is illegal.
pub struct StepUndo<P: VertexProgram> {
    respond: BitSet,
    respond_next: BitSet,
    signaled: BitSet,
    signaled_next: BitSet,
    hot_acc: Option<Vec<Option<P::Message>>>,
    spill_pending: Option<Vec<(VertexId, P::Message)>>,
    value_blocks: Vec<(u32, Vec<P::Value>)>,
}

/// One computational node's full state.
pub struct Worker<P: VertexProgram> {
    /// This worker's id.
    pub id: WorkerId,
    /// The algorithm.
    pub program: Arc<P>,
    /// Global graph facts.
    pub info: GraphInfo,
    /// The cluster-wide partition.
    pub partition: Arc<Partition>,
    /// The cluster-wide Vblock layout.
    pub layout: Arc<BlockLayout>,
    /// Job configuration.
    pub cfg: JobConfig,
    /// Network attachment.
    pub ep: Endpoint,
    /// This worker's simulated disk.
    pub vfs: Arc<dyn Vfs>,
    /// Local vertex range.
    pub range: Range<u32>,

    /// Vertex values (Vblock-aligned fixed-width records).
    pub values: ValueStore<P::Value>,
    /// Push-side adjacency store (Push/PushM/Hybrid).
    pub adjacency: Option<AdjacencyStore>,
    /// b-pull's VE-BLOCK store (BPull/Hybrid).
    pub veblock: Option<VeBlockStore>,
    /// Pull baseline's destination-grouped edges.
    pub gather: Option<GatherStore>,

    /// Out-degree per local vertex (in-memory metadata, like Hama's edge
    /// offsets).
    pub out_degrees: Vec<u32>,
    /// Pull mode: bitmask over workers hosting in-edges of each local
    /// vertex (simulator-side shortcut for the mirror lists a real
    /// deployment exchanges during loading).
    pub mirror_peers: Vec<u64>,

    /// Responding flags set in the previous superstep (read by serving).
    pub respond: BitSet,
    /// Responding flags being set in the current superstep.
    pub respond_next: BitSet,
    /// Per-local-block `res` indicator derived from `respond` (`X_j.res`).
    pub block_res: Vec<bool>,
    /// Pull baseline: vertices signaled (by a responding in-neighbor's
    /// scatter) to gather this superstep.
    pub signaled: BitSet,
    /// Pull baseline: signals accumulating for the next superstep.
    pub signaled_next: BitSet,

    /// Push-family incoming message store.
    pub spill: Option<SpillBuffer<P::Message>>,
    /// MOCgraph online-computing state.
    pub hotset: Option<HotSet<P::Message>>,
    /// Pull baseline's LRU vertex-value cache.
    pub lru: Option<LruCache<u32, P::Value>>,
    /// Global boundary/interior classification (`Async` mode).
    pub cls: Option<Arc<crate::blockexec::BlockClassification>>,
    /// This worker's interior-iteration index (`Async` mode).
    pub interior: Option<crate::blockexec::InteriorIndex>,

    /// Value updates staged during a (b-)pull superstep, flushed once no
    /// peer can read this worker's values anymore.
    pub staged: Vec<(u32, P::Value)>,

    /// Current superstep (set by the runner before each step).
    pub superstep: u64,
    /// Baseline I/O snapshot at superstep start.
    pub io_baseline: IoSnapshot,
    /// High-water memory within the current superstep.
    pub mem_peak: u64,

    /// Pre-images for one-superstep undo (confined recovery); captured
    /// when message logging is on, discarded at the next capture.
    pub undo: Option<StepUndo<P>>,
    /// True while re-executing a superstep whose inputs arrive from
    /// survivors' message logs instead of live flow control (b-pull
    /// issues every block request up-front in this state).
    pub replay: bool,

    /// This worker's trace shard (from [`JobConfig::trace`]), if tracing.
    pub shard: Option<Arc<TraceShard>>,
    /// Modeled-time base (µs since job start) of the current superstep,
    /// handed down by the master with each step command.
    pub step_base_us: u64,
    /// Phase boundaries recorded by the mode executors during the current
    /// superstep: `(phase name, I/O snapshot at the phase's end)`.
    /// Converted into per-phase spans (and per-class VFS events) at
    /// [`Worker::finish_superstep`]. Always empty when not tracing.
    phase_marks: Vec<(&'static str, IoSnapshot)>,
}

impl<P: VertexProgram> Worker<P> {
    /// Builds a worker's stores from the global graph (the loading
    /// phase measured in Fig. 16).
    pub fn load(seed: WorkerSeed<'_, P>) -> io::Result<(Self, WorkerLoadReport)> {
        let WorkerSeed {
            id,
            program,
            graph,
            reverse,
            partition,
            layout,
            cfg,
            ep,
            vfs,
            classification,
        } = seed;
        let t0 = Instant::now();
        let range = partition.worker_range(id);
        let n_local = range.len();
        let info = GraphInfo {
            num_vertices: graph.num_vertices() as u64,
            num_edges: graph.num_edges() as u64,
        };

        // Initial values.
        let init: Vec<P::Value> = range
            .clone()
            .map(|v| program.init(VertexId(v), &info))
            .collect();
        let values = ValueStore::create(vfs.as_ref(), "values", range.start, &init)?;

        // pull's scatter phase reads out-edges to signal destinations.
        // Async jobs can switch into push *and* b-pull supersteps, so
        // they build both stores, like Hybrid.
        let needs_adj = matches!(
            cfg.mode,
            Mode::Push | Mode::PushM | Mode::Hybrid | Mode::Pull | Mode::Async
        );
        let needs_ve = matches!(cfg.mode, Mode::BPull | Mode::Hybrid | Mode::Async);
        let needs_gather = matches!(cfg.mode, Mode::Pull);

        let mut report = WorkerLoadReport::default();

        // Catalog-registered graphs: attach stats-rebinding views of the
        // prebuilt shared stores instead of building privately. Every byte
        // the views read is charged to *this job's* per-worker `IoStats`.
        let shared = cfg.shared_stores.clone();

        let adjacency = if needs_adj {
            let t = Instant::now();
            let s = match &shared {
                Some(sh) => sh.adjacency[id.index()].share_view(Arc::clone(vfs.stats())),
                None => AdjacencyStore::build_with(
                    vfs.as_ref(),
                    "adj",
                    graph,
                    range.clone(),
                    cfg.codec,
                )?,
            };
            report.adj_secs = t.elapsed().as_secs_f64();
            Some(s)
        } else {
            None
        };

        let veblock = if needs_ve {
            let t = Instant::now();
            let s = match &shared {
                Some(sh) => sh.veblock[id.index()].share_view(Arc::clone(vfs.stats())),
                None => VeBlockStore::build_with(vfs.as_ref(), graph, &layout, id, cfg.codec)?,
            };
            report.veblock_secs = t.elapsed().as_secs_f64();
            report.fragments = s.total_fragments();
            report.vblocks = s.local_blocks();
            Some(s)
        } else {
            report.vblocks = layout.worker_block_count(id);
            None
        };

        let gather = if needs_gather {
            Some(match &shared {
                Some(sh) => sh.gather[id.index()].share_view(Arc::clone(vfs.stats())),
                None => GatherStore::build_with(
                    vfs.as_ref(),
                    "gather",
                    graph,
                    range.clone(),
                    cfg.codec,
                )?,
            })
        } else {
            None
        };

        let out_degrees: Vec<u32> = range
            .clone()
            .map(|v| graph.out_degree(VertexId(v)) as u32)
            .collect();

        let mirror_peers = if needs_gather {
            let rev = reverse.expect("pull mode requires the reverse graph");
            range
                .clone()
                .map(|v| {
                    let mut mask = 0u64;
                    for e in rev.out_edges(VertexId(v)) {
                        mask |= 1 << partition.worker_of(e.dst).index();
                    }
                    mask
                })
                .collect()
        } else {
            Vec::new()
        };

        let spill = if matches!(
            cfg.mode,
            Mode::Push | Mode::PushM | Mode::Hybrid | Mode::Async
        ) {
            Some(SpillBuffer::with_codec(
                vfs.as_ref(),
                "spill",
                cfg.buffer_messages,
                cfg.codec,
            )?)
        } else {
            None
        };

        let hotset = if matches!(cfg.mode, Mode::PushM) {
            let ind = graph.in_degrees();
            let local_ind: Vec<u32> = range.clone().map(|v| ind[v as usize]).collect();
            Some(HotSet::new(&local_ind, cfg.buffer_messages.min(n_local)))
        } else {
            None
        };

        let lru = if needs_gather {
            Some(Self::new_value_lru(&cfg))
        } else {
            None
        };

        let (cls, interior) = if matches!(cfg.mode, Mode::Async) {
            let c = classification.expect("Async mode requires the block classification");
            let idx = crate::blockexec::InteriorIndex::build(graph, &layout, &c, id);
            (Some(c), Some(idx))
        } else {
            (None, None)
        };

        report.wall_secs = t0.elapsed().as_secs_f64();
        report.io = vfs.stats().snapshot();

        let shard = cfg.trace.as_ref().map(|t| t.worker(id.index()));
        let worker = Worker {
            id,
            program,
            info,
            partition,
            layout,
            cfg,
            ep,
            vfs,
            range,
            values,
            adjacency,
            veblock,
            gather,
            out_degrees,
            mirror_peers,
            respond: BitSet::new(n_local),
            respond_next: BitSet::new(n_local),
            block_res: Vec::new(),
            signaled: BitSet::new(n_local),
            signaled_next: BitSet::new(n_local),
            spill,
            hotset,
            lru,
            cls,
            interior,
            staged: Vec::new(),
            superstep: 0,
            io_baseline: IoSnapshot::default(),
            mem_peak: 0,
            undo: None,
            replay: false,
            shard,
            step_base_us: 0,
            phase_marks: Vec::new(),
        };
        Ok((worker, report))
    }

    /// Byte weight one cached vertex value charges against the LRU
    /// budget: key + value payload + slab/link overhead.
    pub fn lru_entry_weight() -> usize {
        4 + P::Value::BYTES + 16
    }

    /// A fresh pull-mode vertex cache. The configured capacity is in
    /// *entries* (the paper's `B_i`); internally entries charge their
    /// byte weight against an equivalent byte budget, so uniform-size
    /// values evict exactly as an entry-count cache would.
    fn new_value_lru(cfg: &JobConfig) -> LruCache<u32, P::Value> {
        let entries = cfg.effective_lru_capacity().min(1 << 28);
        LruCache::new(entries.saturating_mul(Self::lru_entry_weight()))
    }

    /// Local index of a local vertex.
    #[inline]
    pub fn local(&self, v: VertexId) -> usize {
        debug_assert!(self.range.contains(&v.0), "{v} not local to {}", self.id);
        (v.0 - self.range.start) as usize
    }

    /// True if `v` lives on this worker.
    #[inline]
    pub fn is_local(&self, v: VertexId) -> bool {
        self.range.contains(&v.0)
    }

    /// Which batch encoding (b-)pull responses use, given the program and
    /// configuration.
    pub fn batch_kind(&self) -> BatchKind {
        if self.cfg.combining && self.program.combiner().is_some() {
            BatchKind::Combined
        } else {
            BatchKind::Concatenated
        }
    }

    /// True if messages can be combined under this configuration.
    pub fn combinable(&self) -> bool {
        self.cfg.combining && self.program.combiner().is_some()
    }

    /// Starts a superstep: snapshots I/O, recomputes the per-block `res`
    /// flags from the previous superstep's responders, resets watermarks.
    pub fn begin_superstep(&mut self, superstep: u64) {
        self.superstep = superstep;
        self.io_baseline = self.vfs.stats().snapshot();
        self.mem_peak = 0;
        self.phase_marks.clear();
        self.block_res = self
            .layout
            .blocks_of_worker(self.id)
            .map(|b| {
                let r = self.layout.block_range(b);
                self.respond
                    .any_in_range(self.rel(r.start)..self.rel(r.end))
            })
            .collect();
    }

    #[inline]
    fn rel(&self, v: u32) -> usize {
        (v - self.range.start) as usize
    }

    /// Notes a momentary memory usage for the high-water mark.
    #[inline]
    pub fn note_memory(&mut self, bytes: u64) {
        self.mem_peak = self.mem_peak.max(bytes);
    }

    /// Baseline memory that exists all superstep: flag vectors, metadata,
    /// spill buffer contents, hot accumulators, staged updates.
    pub fn standing_memory_bytes(&self) -> u64 {
        let mut m = self.respond.memory_bytes() + self.respond_next.memory_bytes();
        if let Some(ve) = &self.veblock {
            m += ve.metadata_memory_bytes();
        }
        if let Some(g) = &self.gather {
            m += g.index_memory_bytes();
        }
        if let Some(s) = &self.spill {
            m += s.memory_bytes();
        }
        if let Some(h) = &self.hotset {
            m += h.memory_bytes() + h.hot.memory_bytes();
        }
        if let Some(l) = &self.lru {
            m += l.used_weight() as u64;
        }
        if let Some(ix) = &self.interior {
            m += ix.memory_bytes();
        }
        m += self.staged.len() as u64 * (4 + P::Value::BYTES as u64);
        m
    }

    /// Finishes a superstep: swaps responding flags, fills the common
    /// fields of the report (estimates, I/O delta, memory).
    pub fn finish_superstep(&mut self, report: &mut StepReport) {
        report.responders = self.respond_next.count() as u64;

        // Next-superstep estimates for the hybrid predictor, in *physical*
        // bytes (what the device would move). Without a codec these equal
        // the logical sizes exactly.
        let mut edge_bytes = 0u64;
        match &self.adjacency {
            Some(adj) => {
                for i in self.respond_next.ones() {
                    edge_bytes += adj.stored_bytes_of(VertexId(self.range.start + i as u32));
                }
            }
            // Pure b-pull builds no adjacency store; the logical size is
            // the (upper-bound) estimate, as before.
            None => {
                for i in self.respond_next.ones() {
                    edge_bytes += self.out_degrees[i] as u64 * 8;
                }
            }
        }
        report.next_push_edge_bytes = edge_bytes;
        if let Some(ve) = &self.veblock {
            let mut scan_edge = 0u64;
            let mut scan_aux = 0u64;
            for b in self.layout.blocks_of_worker(self.id) {
                let r = self.layout.block_range(b);
                if self
                    .respond_next
                    .any_in_range(self.rel(r.start)..self.rel(r.end))
                {
                    let (e, a) = ve.block_scan_stored_bytes(b);
                    scan_edge += e;
                    scan_aux += a;
                }
            }
            let mut vrr = 0u64;
            for i in self.respond_next.ones() {
                vrr += ve.fragments_of(VertexId(self.range.start + i as u32)) as u64
                    * P::Value::BYTES as u64;
            }
            report.next_bpull_edge_bytes = scan_edge;
            report.next_bpull_aux_bytes = scan_aux;
            report.next_bpull_vrr_bytes = vrr;
        }

        self.respond.clear_all();
        self.respond.swap(&mut self.respond_next);
        self.respond_next = BitSet::new(self.range.len());

        self.note_memory(self.standing_memory_bytes());
        report.memory_bytes = self.mem_peak;
        report.io = self.vfs.stats().snapshot().delta(&self.io_baseline);
        self.emit_phase_trace();
        if let Some(s) = &self.spill {
            report.pending_messages = s.total();
        }
        if let Some(h) = &self.hotset {
            report.pending_messages += h.acc.iter().flatten().count() as u64;
        }
    }

    /// Marks the end of an executor phase (`load`, `compute+pushRes`,
    /// `Pull-Request`, ...): records the phase name and the I/O counters
    /// at this boundary. Costs one atomic-counter snapshot when tracing
    /// and nothing at all otherwise; never touches the VFS, so the phase
    /// boundaries themselves add zero bytes to any I/O class.
    ///
    /// Phase *I/O snapshots at deterministic boundaries* are what makes
    /// the trace reproducible: the per-operation event order inside an
    /// exchange/serve phase depends on packet arrival, but the aggregate
    /// per-class deltas between boundaries do not.
    #[inline]
    pub fn trace_phase(&mut self, name: &'static str) {
        if self.shard.is_some() && !self.replay {
            self.phase_marks.push((name, self.vfs.stats().snapshot()));
        }
    }

    /// Converts the recorded phase marks of the finished superstep into
    /// per-phase spans (modeled-time durations laid out sequentially from
    /// [`Worker::step_base_us`]) plus one per-I/O-class VFS event per
    /// phase. Replayed supersteps (confined recovery) emit nothing: their
    /// original execution already did.
    fn emit_phase_trace(&mut self) {
        if self.replay || self.shard.is_none() {
            self.phase_marks.clear();
            return;
        }
        let marks = std::mem::take(&mut self.phase_marks);
        let shard = self.shard.as_ref().expect("checked above");
        shard.set_clock_us(self.step_base_us);
        let mut prev = self.io_baseline;
        for (name, snap) in marks {
            let d = snap.delta(&prev);
            let dur_us = hybridgraph_obs::secs_to_us(d.modeled_secs(&self.cfg.profile));
            let start = shard.clock_us();
            for class in AccessClass::ALL {
                let bytes = d.bytes(class);
                if bytes > 0 {
                    shard.instant_at(
                        start,
                        format!("vfs.{}", class.label()),
                        vec![
                            ("bytes", bytes.into()),
                            ("logical_bytes", d.logical_bytes(class).into()),
                            ("ops", d.ops(class).into()),
                            ("phase", name.into()),
                        ],
                    );
                }
            }
            shard.span(
                name,
                dur_us,
                vec![
                    ("superstep", self.superstep.into()),
                    ("io_bytes", d.total_bytes().into()),
                ],
            );
            prev = snap;
        }
    }

    /// Reads vertex `v`'s out-edges through the cross-job shared cache if
    /// the job has one, falling back to a plain adjacency read otherwise.
    ///
    /// A **hit** serves the edges from memory: no physical bytes move and
    /// no `IO(Ē^t)` is charged — only the logical bytes are recorded (so
    /// this job's `io_ratio` reflects the saving and its `Q_t` inputs
    /// shrink; shared-cache interference is exactly what the
    /// `multi_tenant` experiment measures). A **miss** reads and charges
    /// as before, then publishes the edges for every tenant. Hits, misses
    /// and evictions are attributed to the *requesting* job's report.
    ///
    /// Only deterministic-order call sites may use this: the push compute
    /// loop (canonical work order) and pull's `scatter_signals` (ascending
    /// vertex order). Arrival-ordered paths must not — the cache state
    /// would depend on packet timing.
    pub fn read_out_edges(
        &self,
        v: VertexId,
        class: AccessClass,
        rep: &mut StepReport,
    ) -> io::Result<Arc<Vec<Edge>>> {
        let adj = self.adjacency.as_ref().expect("adjacency store required");
        let stored = adj.stored_bytes_of(v);
        if stored == 0 {
            return Ok(Arc::new(Vec::new()));
        }
        let (Some(cache), Some(shared)) = (&self.cfg.shared_cache, &self.cfg.shared_stores) else {
            let edges = adj.edges_of(v, class)?;
            rep.sem.push_edge_bytes += stored;
            return Ok(Arc::new(edges));
        };
        let (gid, slot) = (shared.graph_id, self.id.index());
        if let Some(edges) = cache.get(slot, gid, v.0) {
            rep.cache_hits += 1;
            self.vfs.stats().record_logical(class, adj.edge_bytes_of(v));
            return Ok(edges);
        }
        rep.cache_misses += 1;
        let edges = Arc::new(adj.edges_of(v, class)?);
        rep.sem.push_edge_bytes += stored;
        rep.cache_evictions += cache.insert(slot, gid, v.0, Arc::clone(&edges), stored);
        Ok(edges)
    }

    /// A blocking receive that accrues the wait into `blocking_secs`.
    pub fn recv_timed(&self, blocking_secs: &mut f64) -> Envelope {
        let t = Instant::now();
        let env = self.ep.recv();
        *blocking_secs += t.elapsed().as_secs_f64();
        env
    }

    /// Flushes staged value updates (contiguous runs become sequential
    /// writes) after all peers finished reading this superstep.
    pub fn flush_staged(&mut self) -> io::Result<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let mut staged = std::mem::take(&mut self.staged);
        staged.sort_by_key(|(v, _)| *v);
        let mut i = 0;
        while i < staged.len() {
            let start = staged[i].0;
            let mut end = i + 1;
            while end < staged.len() && staged[end].0 == staged[end - 1].0 + 1 {
                end += 1;
            }
            let run: Vec<P::Value> = staged[i..end].iter().map(|(_, v)| v.clone()).collect();
            self.values
                .write_range(start..start + run.len() as u32, &run)?;
            i = end;
        }
        Ok(())
    }

    /// Reads back all local values (used when collecting results).
    pub fn collect_values(&mut self) -> io::Result<Vec<P::Value>> {
        // Flush any dirty cached values first (pull mode).
        if let Some(lru) = &mut self.lru {
            for (k, v, dirty) in lru.drain() {
                if dirty {
                    self.values.write_one(VertexId(k), &v)?;
                }
            }
        }
        self.values.read_range(self.range.clone())
    }

    /// Serializes this worker's recoverable state — the vertex-value
    /// segment, the responding/signaled flag vectors, pending spilled
    /// messages, and online-computing accumulators — as the checkpoint
    /// taken after `superstep`. The whole checkpoint commits as **one
    /// classified sequential write** on this worker's VFS, so its cost is
    /// visible in `IoStats` and modeled time like any other byte the
    /// engine moves. Returns the bytes written.
    pub fn write_checkpoint(&mut self, superstep: u64) -> io::Result<u64> {
        debug_assert!(
            self.staged.is_empty(),
            "staged updates must be flushed before checkpointing"
        );
        // Pull mode: push dirty cached values down so the on-disk value
        // segment is authoritative, then rebuild the cache clean (drain
        // returns MRU-first; reinserting oldest-first preserves recency).
        if let Some(lru) = &mut self.lru {
            let entries = lru.drain();
            for (k, v, dirty) in &entries {
                if *dirty {
                    self.values.write_one(VertexId(*k), v)?;
                }
            }
            for (k, v, _) in entries.into_iter().rev() {
                lru.insert_weighted(k, v, false, Self::lru_entry_weight());
            }
        }
        let vals = self.values.read_range(self.range.clone())?;
        let n = self.range.len();
        let mut w = CheckpointWriter::new(superstep);
        w.put_bytes(&encode_slice(&vals));
        w.put_u64(n as u64);
        w.put_words(self.respond.as_words());
        w.put_words(self.signaled.as_words());
        match &self.spill {
            Some(s) => {
                w.put_u8(1);
                let pairs = s.snapshot_pending()?;
                w.put_bytes(&encode_slice(&pairs));
            }
            None => w.put_u8(0),
        }
        match &self.hotset {
            Some(h) => {
                w.put_u8(1);
                let pairs: Vec<(u32, P::Message)> = h
                    .acc
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| m.clone().map(|m| (i as u32, m)))
                    .collect();
                w.put_bytes(&encode_slice(&pairs));
            }
            None => w.put_u8(0),
        }
        w.commit_with(self.vfs.as_ref(), self.cfg.codec)
    }

    /// Restores this worker's recoverable state from the checkpoint taken
    /// after `superstep` (the rollback half of recovery). Values, flag
    /// vectors, pending messages, and online accumulators revert to the
    /// checkpointed cut; the LRU cache and staged updates reset. Works
    /// identically on a surviving worker (discarding newer state) and on
    /// a freshly respawned one (adopting the cut).
    pub fn restore_checkpoint(&mut self, superstep: u64) -> io::Result<()> {
        fn mismatch(what: &str) -> io::Error {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint does not match worker state: {what}"),
            )
        }
        let mut r = CheckpointReader::open(self.vfs.as_ref(), superstep)?;
        let vals: Vec<P::Value> = decode_slice(&r.get_bytes()?);
        let n = self.range.len();
        if vals.len() != n {
            return Err(mismatch("value count"));
        }
        self.values.write_range(self.range.clone(), &vals)?;
        if r.get_u64()? as usize != n {
            return Err(mismatch("flag vector length"));
        }
        self.respond = BitSet::from_words(r.get_words()?, n);
        self.respond_next = BitSet::new(n);
        self.signaled = BitSet::from_words(r.get_words()?, n);
        self.signaled_next = BitSet::new(n);
        match (&mut self.spill, r.get_u8()?) {
            (Some(s), 1) => {
                let pairs: Vec<(VertexId, P::Message)> = decode_slice(&r.get_bytes()?);
                s.restore_pending(pairs)?;
            }
            (None, 0) => {}
            _ => return Err(mismatch("spill buffer presence")),
        }
        match (&mut self.hotset, r.get_u8()?) {
            (Some(h), 1) => {
                for a in h.acc.iter_mut() {
                    *a = None;
                }
                let pairs: Vec<(u32, P::Message)> = decode_slice(&r.get_bytes()?);
                for (i, m) in pairs {
                    if i as usize >= h.acc.len() {
                        return Err(mismatch("hot accumulator index"));
                    }
                    h.acc[i as usize] = Some(m);
                }
            }
            (None, 0) => {}
            _ => return Err(mismatch("hot set presence")),
        }
        if self.lru.is_some() {
            self.lru = Some(Self::new_value_lru(&self.cfg));
        }
        self.staged.clear();
        self.superstep = superstep;
        Ok(())
    }

    /// Captures this worker's one-superstep undo state (called by the
    /// runner **before** [`Worker::begin_superstep`], so the spill
    /// snapshot's reads fall outside the step's measured I/O window).
    /// Replaces any previous capture.
    pub fn begin_undo_capture(&mut self) -> io::Result<()> {
        let spill_pending = match &self.spill {
            Some(s) => Some(s.snapshot_pending()?),
            None => None,
        };
        self.undo = Some(StepUndo {
            respond: self.respond.clone(),
            respond_next: self.respond_next.clone(),
            signaled: self.signaled.clone(),
            signaled_next: self.signaled_next.clone(),
            hot_acc: self.hotset.as_ref().map(|h| h.acc.clone()),
            spill_pending,
            value_blocks: Vec::new(),
        });
        Ok(())
    }

    /// Records the pre-image of a value block the executor is about to
    /// read-modify-write, keyed by the block's first vertex id. No-op
    /// when no undo capture is active; duplicate starts within one
    /// superstep keep the first (oldest) image. Executors call this at
    /// their existing `read_range` sites, so capture costs no extra I/O.
    pub fn note_value_preimage(&mut self, start: u32, vals: &[P::Value]) {
        if let Some(u) = &mut self.undo {
            if !u.value_blocks.iter().any(|(s, _)| *s == start) {
                u.value_blocks.push((start, vals.to_vec()));
            }
        }
    }

    /// Reverts exactly the last captured superstep: value-block
    /// pre-images, pending spilled messages, online accumulators, and
    /// all four flag vectors. Consumes the capture. Returns `true` if a
    /// capture existed (i.e. the undo actually happened).
    pub fn apply_undo(&mut self) -> io::Result<bool> {
        let Some(u) = self.undo.take() else {
            return Ok(false);
        };
        for (start, vals) in &u.value_blocks {
            self.values
                .write_range(*start..*start + vals.len() as u32, vals)?;
        }
        if let (Some(s), Some(pairs)) = (&mut self.spill, u.spill_pending) {
            s.restore_pending(pairs)?;
        }
        if let (Some(h), Some(acc)) = (&mut self.hotset, u.hot_acc) {
            h.acc = acc;
        }
        self.respond = u.respond;
        self.respond_next = u.respond_next;
        self.signaled = u.signaled;
        self.signaled_next = u.signaled_next;
        self.staged.clear();
        Ok(true)
    }

    /// Writes the superstep's captured outgoing remote packets as one
    /// log segment (one classified sequential write) on this worker's
    /// VFS, enabling confined recovery. Returns the bytes written.
    pub fn commit_msg_log(
        &self,
        superstep: u64,
        captured: &[(WorkerId, Packet)],
    ) -> io::Result<u64> {
        let mut w = MsgLogWriter::new(superstep);
        let mut blob = Vec::new();
        for (to, packet) in captured {
            blob.clear();
            packet.encode(&mut blob);
            w.push(to.index() as u32, &blob);
        }
        w.commit_with(self.vfs.as_ref(), self.cfg.codec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_net::combine::SumCombiner;

    #[test]
    fn accumulator_combined() {
        let mut a: MsgAccumulator<f64> = MsgAccumulator::new(true);
        a.accept(
            vec![(VertexId(1), 1.0), (VertexId(2), 2.0), (VertexId(1), 3.0)],
            Some(&SumCombiner),
        );
        assert_eq!(a.len(), 2);
        let groups = a.into_groups();
        assert_eq!(groups, vec![(1, vec![4.0]), (2, vec![2.0])]);
    }

    #[test]
    fn accumulator_list() {
        let mut a: MsgAccumulator<u32> = MsgAccumulator::new(false);
        a.accept(vec![(VertexId(2), 7), (VertexId(1), 5)], None);
        a.accept(vec![(VertexId(2), 8)], None);
        assert_eq!(a.len(), 3);
        assert_eq!(a.memory_bytes(), 3 * 8);
        let groups = a.into_groups();
        assert_eq!(groups, vec![(1, vec![5]), (2, vec![7, 8])]);
    }

    #[test]
    fn hotset_prefers_high_in_degree() {
        let ind = vec![1u32, 50, 3, 40, 2];
        let h: HotSet<f64> = HotSet::new(&ind, 2);
        assert!(h.hot.get(1));
        assert!(h.hot.get(3));
        assert!(!h.hot.get(0));
        assert_eq!(h.hot.count(), 2);
        assert_eq!(h.memory_bytes(), 0);
    }

    #[test]
    fn hotset_capacity_above_population() {
        let ind = vec![1u32, 2];
        let h: HotSet<f64> = HotSet::new(&ind, 10);
        assert_eq!(h.hot.count(), 2);
    }
}
