//! HybridGraph's engine — the paper's contribution.
//!
//! This crate implements the vertex-centric BSP engine of *Hybrid
//! Pulling/Pushing for I/O-Efficient Distributed and Iterative Graph
//! Computing* (SIGMOD 2016) on top of the graph/storage/net substrates:
//!
//! * [`program`] — the decoupled computing functions of §5.2: one
//!   [`VertexProgram`] expresses `update()` plus the shared message
//!   generator used by both `pushRes()` and `pullRes()`.
//! * [`modes`] — the four message-handling strategies the paper compares:
//!   `push` (Giraph-style spill-to-disk), `pushm` (MOCgraph-style message
//!   online computing), `pull` (per-vertex pulling with an LRU vertex
//!   cache, the disk-extended GraphLab analogue) and `bpull` (the paper's
//!   block-centric pulling over VE-BLOCK, Algorithms 1–2).
//! * [`switch`] — the hybrid solution of §5: Theorem 2's initial-mode rule,
//!   the `Q_t` performance metric (Eq. 11) and the Δt = 2 predictor.
//! * [`runner`] — the master: one thread per computational node, BSP
//!   barriers, termination detection, per-superstep metric aggregation and
//!   mode switching (`runSwitch`, Fig. 6).
//! * [`metrics`] — per-superstep and per-job measurements: byte counts per
//!   access class, semantic I/O quantities (`IO(V^t)`, `IO(Ē^t)`,
//!   `IO(E^t)`, `IO(F^t)`, `IO(V^t_rr)`, `IO(M_disk)`), network traffic,
//!   memory usage, and modeled time under a device profile.
//! * [`fault`] — deterministic, seedable fault injection
//!   ([`FaultPlan`](fault::FaultPlan)) that kills chosen workers at chosen
//!   supersteps; paired with superstep-boundary checkpointing
//!   ([`CheckpointPolicy`](config::CheckpointPolicy)) and the runner's
//!   respawn-and-rollback recovery path.

pub mod bitset;
pub mod blockexec;
pub mod config;
pub mod fault;
pub mod metrics;
pub mod modes;
pub mod pacer;
pub mod program;
pub mod runner;
pub mod shared;
pub mod snapshot;
pub mod switch;
pub mod worker;

pub use blockexec::{BlockClassification, InteriorIndex};
pub use config::{
    BarrierSink, CheckpointPolicy, JobConfig, Mode, ProgressSink, ResumeState, WorkerDisks,
};
pub use fault::{FaultPhase, FaultPlan, MasterKillPoint};
pub use metrics::{
    AsyncStepStats, FailureEvent, JobMetrics, NetOverhead, RecoveryMetrics, SemanticBytes,
    StepKind, StepReport, SuperstepMetrics,
};
pub use pacer::StepPacer;
pub use program::{GraphInfo, Update, VertexProgram};
pub use runner::{run_job, JobError, JobResult};
pub use shared::SharedStores;
pub use snapshot::{adaptive_spacing_secs, MasterState, MtbfEstimator};
pub use switch::{
    async_gain, b_lower_bound, decode_qt_audits, encode_qt_audits, q_metric, AsyncCostInputs,
    CostInputs, Switcher,
};
