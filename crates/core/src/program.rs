//! The vertex-program abstraction (paper §3 and §5.2).
//!
//! The paper decouples Pregel's `compute()` so the same user logic can be
//! driven by push and by (b-)pull:
//!
//! * `update(v, M_I(v)) → v'` — shared by every mode ([`VertexProgram::update`]),
//! * `pushRes(v') → M_O(v)` / `pullRes(v) → M_O(v)` — both reduce to the
//!   per-edge generator [`VertexProgram::message`] applied to a vertex
//!   whose responding flag is set; push calls it immediately after
//!   `update()`, b-pull calls it on demand in the next superstep,
//! * `load(…) → M_I(v)` — engine-side (the push message store).
//!
//! A vertex signals `setResFlag` by returning [`Update::respond`] = true.

use hybridgraph_graph::{Edge, VertexId};
use hybridgraph_net::Combiner;
use hybridgraph_storage::Record;

/// Global facts a program may use (vertex/edge totals, e.g. PageRank's
/// `1/N` terms).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GraphInfo {
    /// Total vertices in the graph.
    pub num_vertices: u64,
    /// Total directed edges in the graph.
    pub num_edges: u64,
}

/// The result of one `update()` call.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Update<V> {
    /// The vertex's new value.
    pub value: V,
    /// True to set the responding flag: the vertex will send messages —
    /// immediately in push, on demand next superstep in (b-)pull.
    pub respond: bool,
}

impl<V> Update<V> {
    /// New value, responding.
    pub fn respond(value: V) -> Self {
        Update {
            value,
            respond: true,
        }
    }

    /// New value, staying silent.
    pub fn halt(value: V) -> Self {
        Update {
            value,
            respond: false,
        }
    }
}

/// A vertex-centric iterative graph algorithm.
///
/// Implementations must be deterministic: `update` may not depend on the
/// *order* of `msgs` (the engine delivers them in an unspecified order,
/// and push/pull modes differ in ordering). The cross-mode equivalence
/// tests rely on this.
pub trait VertexProgram: Send + Sync + 'static {
    /// Per-vertex state (the paper's `val`), fixed-width on disk.
    type Value: Record + PartialEq + std::fmt::Debug;
    /// Message payload, fixed-width on the wire and on disk.
    type Message: Record + PartialEq + std::fmt::Debug;

    /// Human-readable algorithm name (figure labels).
    fn name(&self) -> &'static str;

    /// Initial value of `v`, written during graph loading.
    fn init(&self, v: VertexId, info: &GraphInfo) -> Self::Value;

    /// Whether `v` computes in superstep 1 (before any messages exist).
    /// Defaults to every vertex (Always-Active-style algorithms).
    fn initially_active(&self, v: VertexId, info: &GraphInfo) -> bool {
        let _ = (v, info);
        true
    }

    /// The shared `update()` of §5.2: consume `msgs`, produce the new
    /// value and the responding flag. `superstep` starts at 1; in
    /// superstep 1 `msgs` is always empty.
    fn update(
        &self,
        v: VertexId,
        info: &GraphInfo,
        superstep: u64,
        current: &Self::Value,
        msgs: &[Self::Message],
    ) -> Update<Self::Value>;

    /// The per-edge message generator shared by `pushRes` and `pullRes`:
    /// the message a responding `src` with `value` sends along `edge`.
    /// `out_degree` is `src`'s out-degree (PageRank divides by it).
    fn message(
        &self,
        src: VertexId,
        value: &Self::Value,
        out_degree: u32,
        edge: &Edge,
    ) -> Option<Self::Message>;

    /// The message combiner, if messages are commutative and associative.
    /// Programs without one (LPA, SA) can only be concatenated, which also
    /// rules out the `PushM` mode and switches Vblock sizing to Eq. 6.
    fn combiner(&self) -> Option<&dyn Combiner<Self::Message>> {
        None
    }

    /// Fixed superstep budget (e.g. PageRank's `maxNum`); `None` runs
    /// until convergence (no responders and no pending messages).
    fn max_supersteps(&self) -> Option<u64> {
        None
    }

    /// Scalar change magnitude of one `update()` call, driving `Async`
    /// mode's per-block pseudo-round cutoff and — when [`Self::tolerance`]
    /// is set — the job-level convergence test. The default treats any
    /// value change as residual 1 and an unchanged value as 0, which is
    /// exact for discrete programs (LPA, WCC); numeric programs override
    /// it with a metric like `|new − old|`.
    fn residual(&self, old: &Self::Value, new: &Self::Value) -> f64 {
        if old == new {
            0.0
        } else {
            1.0
        }
    }

    /// Job-level convergence tolerance: when `Some(eps)`, the master also
    /// terminates once the superstep's maximum [`Self::residual`] over
    /// all updated vertices is at or below `eps`. `None` (the default)
    /// keeps the classic rule (no responders and no pending messages, or
    /// the superstep budget) — existing programs run exactly as before.
    fn tolerance(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;

    impl VertexProgram for Noop {
        type Value = u32;
        type Message = u32;

        fn name(&self) -> &'static str {
            "noop"
        }

        fn init(&self, v: VertexId, _info: &GraphInfo) -> u32 {
            v.0
        }

        fn update(
            &self,
            _v: VertexId,
            _info: &GraphInfo,
            _superstep: u64,
            current: &u32,
            _msgs: &[u32],
        ) -> Update<u32> {
            Update::halt(*current)
        }

        fn message(&self, _s: VertexId, _v: &u32, _d: u32, _e: &Edge) -> Option<u32> {
            None
        }
    }

    #[test]
    fn defaults() {
        let p = Noop;
        let info = GraphInfo {
            num_vertices: 4,
            num_edges: 2,
        };
        assert!(p.initially_active(VertexId(0), &info));
        assert!(p.combiner().is_none());
        assert!(p.max_supersteps().is_none());
        assert_eq!(p.init(VertexId(3), &info), 3);
        assert_eq!(p.residual(&7, &7), 0.0);
        assert_eq!(p.residual(&7, &8), 1.0);
        assert!(p.tolerance().is_none());
    }

    #[test]
    fn update_constructors() {
        assert!(Update::respond(1u32).respond);
        assert!(!Update::halt(1u32).respond);
    }
}
