//! GraphHP-style block classification for the hybrid sync/async mode.
//!
//! The `Async` mode partitions each worker's vertices by the VE-BLOCK
//! layout into **boundary** vertices (at least one in- or out-edge
//! crossing a Vblock border) and **interior** vertices (every edge stays
//! inside their own Vblock). Interior vertices' whole neighborhoods are
//! block-local, so between two global barriers the executor can iterate
//! them in-place — regenerating their inboxes from in-block neighbors'
//! current values — without exchanging a single message. Boundary
//! vertices keep strict BSP semantics: their messages queue for the
//! barrier exactly as in push mode.
//!
//! [`BlockClassification`] is the global, immutable classification built
//! once by the master and shared with every worker.
//! [`InteriorIndex`] is the per-worker in-memory structure the async
//! executor iterates: a per-block reverse adjacency restricted to
//! interior destinations (inbox regeneration) plus the forward lists
//! used for dirty propagation between pseudo-rounds.

use crate::bitset::BitSet;
use hybridgraph_graph::{BlockLayout, Edge, Graph, WorkerId};
use std::ops::Range;

/// Global boundary/interior classification of every vertex under a
/// VE-BLOCK layout. Built once per job (one pass over the edges),
/// immutable afterwards, shared across workers by `Arc`.
#[derive(Clone, Debug)]
pub struct BlockClassification {
    /// Bit `v` set iff vertex `v` has a block-crossing in- or out-edge.
    boundary: BitSet,
    /// Per-block boundary vertex counts, indexed by `BlockId`.
    pub block_boundary: Vec<u64>,
    /// Per-block interior vertex counts, indexed by `BlockId`.
    pub block_interior: Vec<u64>,
    /// Total boundary vertices.
    pub boundary_total: u64,
    /// Total interior vertices.
    pub interior_total: u64,
}

impl BlockClassification {
    /// Classifies every vertex of `g` under `layout`: an edge whose
    /// endpoints live in different Vblocks marks **both** endpoints
    /// boundary (the source must export its message, the destination's
    /// inbox cannot be regenerated locally).
    pub fn classify(g: &Graph, layout: &BlockLayout) -> BlockClassification {
        let n = g.num_vertices();
        let mut boundary = BitSet::new(n);
        if n > 0 && layout.num_blocks() > 0 {
            for (src, e) in g.edges() {
                if layout.block_of(src) != layout.block_of(e.dst) {
                    boundary.set(src.index());
                    boundary.set(e.dst.index());
                }
            }
        }
        let mut block_boundary = vec![0u64; layout.num_blocks()];
        let mut block_interior = vec![0u64; layout.num_blocks()];
        for b in layout.block_ids() {
            let r = layout.block_range(b);
            let mut bd = 0u64;
            for v in r.clone() {
                bd += u64::from(boundary.get(v as usize));
            }
            block_boundary[b.index()] = bd;
            block_interior[b.index()] = r.len() as u64 - bd;
        }
        let boundary_total = block_boundary.iter().sum();
        let interior_total = block_interior.iter().sum();
        BlockClassification {
            boundary,
            block_boundary,
            block_interior,
            boundary_total,
            interior_total,
        }
    }

    /// True iff `v` (global id) is a boundary vertex.
    #[inline]
    pub fn is_boundary(&self, v: u32) -> bool {
        self.boundary.get(v as usize)
    }

    /// In-memory footprint of the classification.
    pub fn memory_bytes(&self) -> u64 {
        self.boundary.memory_bytes()
            + (self.block_boundary.len() + self.block_interior.len()) as u64 * 8
    }
}

/// One Vblock's slice of the interior index.
#[derive(Clone, Debug)]
pub struct InteriorBlock {
    /// Global vertex range of the block.
    pub range: Range<u32>,
    /// Global ids of the block's interior vertices, ascending.
    pub interior: Vec<u32>,
    /// CSR offsets over `interior`: in-block in-edges of interior vertex
    /// `interior[i]` are `rev[rev_offsets[i]..rev_offsets[i+1]]`.
    pub rev_offsets: Vec<u32>,
    /// `(src, edge)` pairs, grouped by interior destination, sources
    /// ascending within a group — the canonical inbox-regeneration order.
    pub rev: Vec<(u32, Edge)>,
    /// CSR offsets over the block's vertices (by in-block position):
    /// interior destinations of vertex `range.start + j` are
    /// `fwd[fwd_offsets[j]..fwd_offsets[j+1]]` (dirty propagation).
    pub fwd_offsets: Vec<u32>,
    /// Positions into `interior` of each source's in-block interior
    /// destinations.
    pub fwd: Vec<u32>,
}

/// The per-worker async iteration structure: one [`InteriorBlock`] per
/// local Vblock, in block order. Built at load time from the global
/// graph (before the worker drops its borrow), held in memory for the
/// whole job like the out-degree metadata.
#[derive(Clone, Debug)]
pub struct InteriorIndex {
    /// One entry per local block, ordered as `layout.blocks_of_worker`.
    pub blocks: Vec<InteriorBlock>,
}

impl InteriorIndex {
    /// Builds the index for worker `id`'s blocks.
    pub fn build(
        g: &Graph,
        layout: &BlockLayout,
        cls: &BlockClassification,
        id: WorkerId,
    ) -> InteriorIndex {
        let mut blocks = Vec::with_capacity(layout.worker_block_count(id));
        for b in layout.blocks_of_worker(id) {
            let range = layout.block_range(b);
            let interior: Vec<u32> = range.clone().filter(|&v| !cls.is_boundary(v)).collect();
            // Position of each interior vertex inside `interior`, by
            // in-block offset (u32::MAX for boundary vertices).
            let mut pos = vec![u32::MAX; range.len()];
            for (i, &v) in interior.iter().enumerate() {
                pos[(v - range.start) as usize] = i as u32;
            }
            // Count in-block edges into interior destinations, then fill
            // both CSRs in one more pass (sources ascending keeps the
            // reverse groups in canonical order).
            let mut rev_counts = vec![0u32; interior.len()];
            let mut fwd_offsets = vec![0u32; range.len() + 1];
            for src in range.clone() {
                for e in g.out_edges(hybridgraph_graph::VertexId(src)) {
                    if range.contains(&e.dst.0) {
                        let p = pos[(e.dst.0 - range.start) as usize];
                        if p != u32::MAX {
                            rev_counts[p as usize] += 1;
                            fwd_offsets[(src - range.start) as usize + 1] += 1;
                        }
                    }
                }
            }
            let mut rev_offsets = vec![0u32; interior.len() + 1];
            for i in 0..interior.len() {
                rev_offsets[i + 1] = rev_offsets[i] + rev_counts[i];
            }
            for j in 0..range.len() {
                fwd_offsets[j + 1] += fwd_offsets[j];
            }
            let total = rev_offsets.last().copied().unwrap_or(0) as usize;
            let mut rev = vec![(0u32, Edge::to(hybridgraph_graph::VertexId(0))); total];
            let mut fwd = vec![0u32; total];
            let mut rev_cursor = rev_offsets[..interior.len()].to_vec();
            let mut fwd_cursor = fwd_offsets[..range.len()].to_vec();
            for src in range.clone() {
                for e in g.out_edges(hybridgraph_graph::VertexId(src)) {
                    if range.contains(&e.dst.0) {
                        let p = pos[(e.dst.0 - range.start) as usize];
                        if p != u32::MAX {
                            let rc = &mut rev_cursor[p as usize];
                            rev[*rc as usize] = (src, *e);
                            *rc += 1;
                            let fc = &mut fwd_cursor[(src - range.start) as usize];
                            fwd[*fc as usize] = p;
                            *fc += 1;
                        }
                    }
                }
            }
            blocks.push(InteriorBlock {
                range,
                interior,
                rev_offsets,
                rev,
                fwd_offsets,
                fwd,
            });
        }
        InteriorIndex { blocks }
    }

    /// In-memory footprint (counts toward the worker's high-water mark).
    pub fn memory_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| {
                (b.interior.len() + b.rev_offsets.len() + b.fwd_offsets.len() + b.fwd.len()) as u64
                    * 4
                    + b.rev.len() as u64 * (4 + Edge::DISK_BYTES)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_graph::{Partition, VertexId};

    /// 8 vertices, 2 workers x 2 blocks of 2. Edges:
    ///   0->1 (in-block), 1->0 (in-block), 0->2 (cross-block),
    ///   2->3 (in-block), 4->5 (in-block), 5->6 (cross-block, cross-worker),
    ///   6->7 (in-block), 7->6 (in-block).
    fn fixture() -> (Graph, Partition, BlockLayout) {
        let edges: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 0),
            (0, 2),
            (2, 3),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 6),
        ];
        let mut offsets = vec![0u64; 9];
        for &(s, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..8 {
            offsets[i + 1] += offsets[i];
        }
        let mut sorted = edges.clone();
        sorted.sort();
        let es: Vec<Edge> = sorted.iter().map(|&(_, d)| Edge::to(VertexId(d))).collect();
        let g = Graph::from_parts(offsets, es);
        let p = Partition::range(8, 2);
        let layout = BlockLayout::uniform(&p, 2);
        (g, p, layout)
    }

    #[test]
    fn classification_marks_both_crossing_endpoints() {
        let (g, _p, layout) = fixture();
        let cls = BlockClassification::classify(&g, &layout);
        // Crossing edges: 0->2 (blocks 0->1) and 5->6 (blocks 2->3).
        for v in [0u32, 2, 5, 6] {
            assert!(cls.is_boundary(v), "vertex {v} should be boundary");
        }
        for v in [1u32, 3, 4, 7] {
            assert!(!cls.is_boundary(v), "vertex {v} should be interior");
        }
        assert_eq!(cls.boundary_total, 4);
        assert_eq!(cls.interior_total, 4);
        assert_eq!(cls.block_boundary, vec![1, 1, 1, 1]);
        assert_eq!(cls.block_interior, vec![1, 1, 1, 1]);
        assert_eq!(cls.boundary_total + cls.interior_total, 8);
    }

    #[test]
    fn interior_index_reverse_and_forward_agree() {
        let (g, _p, layout) = fixture();
        let cls = BlockClassification::classify(&g, &layout);
        let idx = InteriorIndex::build(&g, &layout, &cls, WorkerId(0));
        assert_eq!(idx.blocks.len(), 2);

        // Block 0 = {0, 1}; interior = {1}; in-block in-edges of 1: 0->1.
        let b0 = &idx.blocks[0];
        assert_eq!(b0.interior, vec![1]);
        assert_eq!(b0.rev_offsets, vec![0, 1]);
        assert_eq!(b0.rev.len(), 1);
        assert_eq!(b0.rev[0].0, 0, "source of 1's only in-block in-edge");
        assert_eq!(b0.rev[0].1.dst, VertexId(1));
        // Forward: vertex 0 targets interior position 0 (vertex 1);
        // vertex 1's in-block edge 1->0 targets a boundary vertex.
        assert_eq!(b0.fwd_offsets, vec![0, 1, 1]);
        assert_eq!(b0.fwd, vec![0]);

        // Block 1 = {2, 3}; interior = {3}; in-edges of 3: 2->3.
        let b1 = &idx.blocks[1];
        assert_eq!(b1.interior, vec![3]);
        assert_eq!(b1.rev[0].0, 2);

        // Worker 1: block {6, 7} has interior = {7} (6 is boundary).
        let idx1 = InteriorIndex::build(&g, &layout, &cls, WorkerId(1));
        let b3 = &idx1.blocks[1];
        assert_eq!(b3.range, 6..8);
        assert_eq!(b3.interior, vec![7]);
        assert_eq!(b3.rev.len(), 1, "7->6 targets a boundary dst, excluded");
        assert_eq!(b3.rev[0].0, 6);
        assert!(idx1.memory_bytes() > 0);
    }

    #[test]
    fn empty_graph_classifies_cleanly() {
        let g = Graph::empty(0);
        let p = Partition::range(0, 1);
        let layout = BlockLayout::uniform(&p, 1);
        let cls = BlockClassification::classify(&g, &layout);
        assert_eq!(cls.boundary_total, 0);
        assert_eq!(cls.interior_total, 0);
        let idx = InteriorIndex::build(&g, &layout, &cls, WorkerId(0));
        assert!(idx.blocks.is_empty());
        assert_eq!(idx.memory_bytes(), 0);
    }
}
