//! Catalog-built stores a job attaches to instead of loading privately.
//!
//! A registered graph is partitioned and laid out once, and its three
//! on-disk stores are built once per worker slot. A job configured with
//! [`SharedStores`] skips the build in `Worker::load` and attaches cheap
//! read-only views instead — same bytes, same indices, but every read the
//! job performs is recorded into *its own* per-worker
//! [`IoStats`](hybridgraph_storage::IoStats) (the stats-rebinding views of
//! the storage crate), so per-job I/O accounting and `Q_t` inputs stay
//! exactly as correct as for a privately loaded graph.

use hybridgraph_storage::adjacency::AdjacencyStore;
use hybridgraph_storage::gather::GatherStore;
use hybridgraph_storage::veblock::VeBlockStore;
use std::sync::Arc;

/// Per-worker-slot prebuilt stores for one registered graph.
///
/// All three store kinds are built eagerly at registration so a job of
/// any mode (push needs adjacency, b-pull needs VE-BLOCK, pull needs
/// gather) can attach. Jobs over a registered graph must use exactly
/// `workers()` workers — the stores are sliced for that partition.
#[derive(Clone)]
pub struct SharedStores {
    /// Catalog-wide id of the registered graph (cache key namespace).
    pub graph_id: u32,
    /// `adjacency[w]` — worker `w`'s adjacency store.
    pub adjacency: Vec<Arc<AdjacencyStore>>,
    /// `veblock[w]` — worker `w`'s VE-BLOCK store.
    pub veblock: Vec<Arc<VeBlockStore>>,
    /// `gather[w]` — worker `w`'s destination-grouped gather store.
    pub gather: Vec<Arc<GatherStore>>,
}

impl SharedStores {
    /// The worker count the stores were built for.
    pub fn workers(&self) -> usize {
        self.adjacency.len()
    }
}

impl std::fmt::Debug for SharedStores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStores")
            .field("graph_id", &self.graph_id)
            .field("workers", &self.workers())
            .finish()
    }
}
