//! Per-superstep and per-job measurements.
//!
//! Everything the paper's figures plot comes through here: byte counts per
//! I/O class (Fig. 10), the semantic I/O quantities of Eqs. 7–8, network
//! traffic and message counts (Figs. 17–18), memory usage (Fig. 14(d),
//! Figs. 23–24), `Q_t` (Fig. 14(a)) and modeled runtime under a device
//! profile (Figs. 7–9, 15, 25).

use crate::config::Mode;
use hybridgraph_obs::QtAudit;
use hybridgraph_storage::{DeviceProfile, IoSnapshot};

/// What a worker executed in one superstep.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// Pure push: load + update + pushRes.
    Push,
    /// Push without sending — the first half of switching push → b-pull
    /// (Fig. 6): load + update only; respond flags carry the signal.
    PushNoSend,
    /// MOCgraph-style push with online computing.
    PushM,
    /// Per-vertex pull (gather) baseline.
    Pull,
    /// Pure b-pull: Pull-Request + Pull-Respond + update.
    BPull,
    /// b-pull then an immediate pushRes on the new values — the switch
    /// superstep b-pull → push (Fig. 6).
    BPullThenPush,
    /// GraphHP-style hybrid sync/async: interior vertices iterate in
    /// block-local pseudo-rounds between global barriers; boundary
    /// messages queue for the barrier as usual.
    Async,
    /// Async compute followed by a full push send (interior destinations
    /// included) — the switch superstep async → push, leaving the inbox
    /// exactly as a strict push superstep would.
    AsyncThenPush,
}

impl StepKind {
    /// The standalone mode this step belongs to, for reporting.
    pub fn mode(self) -> Mode {
        match self {
            StepKind::Push | StepKind::PushNoSend => Mode::Push,
            StepKind::PushM => Mode::PushM,
            StepKind::Pull => Mode::Pull,
            StepKind::BPull | StepKind::BPullThenPush => Mode::BPull,
            StepKind::Async | StepKind::AsyncThenPush => Mode::Async,
        }
    }

    /// True for the fused switching supersteps.
    pub fn is_switch(self) -> bool {
        matches!(
            self,
            StepKind::PushNoSend | StepKind::BPullThenPush | StepKind::AsyncThenPush
        )
    }

    /// Short figure label.
    pub fn label(self) -> &'static str {
        match self {
            StepKind::Push => "push",
            StepKind::PushNoSend => "push>b-pull",
            StepKind::PushM => "pushM",
            StepKind::Pull => "pull",
            StepKind::BPull => "b-pull",
            StepKind::BPullThenPush => "b-pull>push",
            StepKind::Async => "async",
            StepKind::AsyncThenPush => "async>push",
        }
    }
}

/// Per-superstep measurements specific to the `Async` mode's block-local
/// pseudo-rounds. All-zero for strict-BSP step kinds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct AsyncStepStats {
    /// Block-local pseudo-rounds executed inside this superstep (max over
    /// workers; round 0 is the sweep every async superstep performs, so a
    /// converged superstep still reports 1).
    pub pseudo_rounds: u64,
    /// Interior `update()` calls beyond round 0 — the duplicated compute
    /// the `Q_t` async term charges.
    pub interior_updates: u64,
    /// Interior messages regenerated in-memory across all pseudo-rounds
    /// (never hit the fabric or the spill store).
    pub interior_messages: u64,
    /// Bytes of those interior messages — I/O and network traffic the
    /// pseudo-rounds avoided versus strict BSP.
    pub interior_msg_bytes: u64,
    /// Boundary vertices that updated in round 0.
    pub boundary_active: u64,
    /// Interior vertices that updated in round 0.
    pub interior_active: u64,
    /// Blocks that entered the pseudo-round loop with at least one dirty
    /// interior vertex.
    pub blocks_active: u64,
    /// Blocks whose pseudo-round loop reached the residual threshold
    /// before the round cap.
    pub blocks_converged: u64,
}

impl AsyncStepStats {
    /// Merge one worker's stats into the master aggregate: rounds are a
    /// max (workers iterate independently between the same barriers),
    /// counts are sums.
    pub fn merge(&mut self, o: &AsyncStepStats) {
        self.pseudo_rounds = self.pseudo_rounds.max(o.pseudo_rounds);
        self.interior_updates += o.interior_updates;
        self.interior_messages += o.interior_messages;
        self.interior_msg_bytes += o.interior_msg_bytes;
        self.boundary_active += o.boundary_active;
        self.interior_active += o.interior_active;
        self.blocks_active += o.blocks_active;
        self.blocks_converged += o.blocks_converged;
    }
}

/// The paper's semantic I/O quantities for one superstep (bytes).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SemanticBytes {
    /// `IO(V^t)` — vertex values read + written while updating.
    pub value_update_bytes: u64,
    /// `IO(Ē^t)` — adjacency edge bytes read by push-style compute.
    pub push_edge_bytes: u64,
    /// `IO(E^t)` — Eblock edge bytes scanned by Pull-Respond.
    pub bpull_edge_bytes: u64,
    /// `IO(F^t)` — fragment auxiliary bytes scanned by Pull-Respond.
    pub fragment_aux_bytes: u64,
    /// `IO(V^t_rr)` — random svertex value reads by Pull-Respond (and the
    /// pull baseline's cache misses).
    pub svertex_rand_bytes: u64,
    /// `IO(M_disk)` — message bytes spilled to disk by push (the written
    /// side; an equal read-back follows at the next superstep).
    pub msg_spill_bytes: u64,
}

impl SemanticBytes {
    /// Component-wise sum.
    pub fn plus(&self, o: &SemanticBytes) -> SemanticBytes {
        SemanticBytes {
            value_update_bytes: self.value_update_bytes + o.value_update_bytes,
            push_edge_bytes: self.push_edge_bytes + o.push_edge_bytes,
            bpull_edge_bytes: self.bpull_edge_bytes + o.bpull_edge_bytes,
            fragment_aux_bytes: self.fragment_aux_bytes + o.fragment_aux_bytes,
            svertex_rand_bytes: self.svertex_rand_bytes + o.svertex_rand_bytes,
            msg_spill_bytes: self.msg_spill_bytes + o.msg_spill_bytes,
        }
    }

    /// `C_io(push)` per Eq. 7: `IO(V) + IO(Ē) + 2 · IO(M_disk)`.
    pub fn cio_push(&self) -> u64 {
        self.value_update_bytes + self.push_edge_bytes + 2 * self.msg_spill_bytes
    }

    /// `C_io(b-pull)` per Eq. 8: `IO(V) + IO(E) + IO(F) + IO(V_rr)`.
    pub fn cio_bpull(&self) -> u64 {
        self.value_update_bytes
            + self.bpull_edge_bytes
            + self.fragment_aux_bytes
            + self.svertex_rand_bytes
    }
}

/// One worker's report for one superstep.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Vertices whose `update()` ran.
    pub updated: u64,
    /// Vertices whose responding flag is set for the next superstep.
    pub responders: u64,
    /// Raw messages generated (before concatenation/combining).
    pub messages_produced: u64,
    /// Messages consumed by `update()`.
    pub messages_consumed: u64,
    /// Messages waiting in the spill/receive store for the next superstep
    /// (push modes).
    pub pending_messages: u64,
    /// Push modes: raw messages drained (loaded) this superstep.
    pub delivered_raw: u64,
    /// Push modes: distinct destinations among drained messages.
    pub delivered_distinct: u64,
    /// Semantic I/O quantities observed this superstep.
    pub sem: SemanticBytes,
    /// Estimate: adjacency edge bytes push would read next superstep
    /// (out-edge bytes of current responders).
    pub next_push_edge_bytes: u64,
    /// Estimate: Eblock edge bytes b-pull would scan next superstep
    /// (blocks containing a responder).
    pub next_bpull_edge_bytes: u64,
    /// Estimate: fragment auxiliary bytes for the same scan.
    pub next_bpull_aux_bytes: u64,
    /// Estimate: random svertex read bytes for the same scan (responding
    /// fragments × value size).
    pub next_bpull_vrr_bytes: u64,
    /// High-water in-memory footprint this superstep (buffers, staged
    /// values, metadata).
    pub memory_bytes: u64,
    /// This worker's I/O delta for the superstep.
    pub io: IoSnapshot,
    /// Wall-clock seconds the worker spent in the superstep.
    pub wall_secs: f64,
    /// Wall-clock seconds spent blocked exchanging messages (Fig. 17).
    pub blocking_secs: f64,
    /// Bytes appended to the sender-side outgoing-message log this
    /// superstep (one classified sequential write; zero when
    /// [`message_logging`](crate::config::JobConfig::message_logging) is
    /// off).
    pub msg_log_bytes: u64,
    /// Cross-job shared-cache hits this worker took (multi-tenant runs;
    /// zero without a [`shared_cache`](crate::config::JobConfig::shared_cache)).
    pub cache_hits: u64,
    /// Cross-job shared-cache misses (each one a normal charged read).
    pub cache_misses: u64,
    /// Entries this worker's inserts displaced from the shared cache.
    pub cache_evictions: u64,
    /// Async pseudo-round measurements (all-zero for strict-BSP kinds).
    pub asy: AsyncStepStats,
    /// Maximum [`residual`](crate::program::VertexProgram::residual) over
    /// this worker's updates, tracked only when the program declares a
    /// [`tolerance`](crate::program::VertexProgram::tolerance); 0.0
    /// otherwise.
    pub max_residual: f64,
}

/// Master-side aggregation of one superstep.
#[derive(Clone, Debug)]
pub struct SuperstepMetrics {
    /// 1-based superstep number.
    pub superstep: u64,
    /// What ran.
    pub kind: StepKind,
    /// Summed I/O over workers.
    pub io: IoSnapshot,
    /// Summed semantic quantities.
    pub sem: SemanticBytes,
    /// Remote bytes sent (summed over workers).
    pub net_out_bytes: u64,
    /// Loopback bytes (accounted separately; not network).
    pub net_local_bytes: u64,
    /// Raw messages emitted on the fabric.
    pub net_raw_messages: u64,
    /// Values on the wire after merging.
    pub net_wire_values: u64,
    /// Messages merged away (`M_co` observed).
    pub net_saved_messages: u64,
    /// Pull/gather requests sent.
    pub net_requests: u64,
    /// Vertices updated.
    pub updated: u64,
    /// Responders for the next superstep.
    pub responders: u64,
    /// Raw messages generated.
    pub messages_produced: u64,
    /// Messages pending for the next superstep (push).
    pub pending_messages: u64,
    /// `C_io(push)` for this superstep — measured if push ran, estimated
    /// otherwise (Fig. 12's quantity).
    pub cio_push_bytes: u64,
    /// `C_io(b-pull)` — measured if b-pull ran, estimated otherwise
    /// (Fig. 13's quantity).
    pub cio_bpull_bytes: u64,
    /// `M_co` — measured in (b-)pull supersteps, estimated in push ones
    /// (Fig. 11's quantity).
    pub mco: u64,
    /// The switching metric `Q_t` of Eq. 11, evaluated with this
    /// superstep's quantities (positive favours b-pull).
    pub q_metric: f64,
    /// Summed high-water memory across workers.
    pub memory_bytes: u64,
    /// Modeled seconds: max over workers of I/O + network + CPU time.
    pub modeled_secs: f64,
    /// Modeled I/O seconds (max over workers).
    pub modeled_io_secs: f64,
    /// Modeled network seconds (max over workers).
    pub modeled_net_secs: f64,
    /// Measured wall seconds of the superstep (slowest worker).
    pub wall_secs: f64,
    /// Measured blocking (message-exchange) seconds, slowest worker.
    pub blocking_secs: f64,
    /// Summed cross-job shared-cache hits (multi-tenant runs).
    pub cache_hits: u64,
    /// Summed cross-job shared-cache misses.
    pub cache_misses: u64,
    /// Summed shared-cache evictions caused by this job's inserts.
    pub cache_evictions: u64,
    /// Async pseudo-round measurements (rounds max'd, counts summed over
    /// workers; all-zero for strict-BSP kinds).
    pub asy: AsyncStepStats,
    /// Maximum per-update residual across workers (0.0 unless the program
    /// declares a convergence tolerance).
    pub max_residual: f64,
}

/// Loading-phase measurements (Fig. 16).
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Wall seconds to build all stores (slowest worker).
    pub wall_secs: f64,
    /// Bytes written while loading, per class, summed over workers.
    pub io: IoSnapshot,
    /// Total VE-BLOCK fragments across workers (the paper's `f`).
    pub fragments: u64,
    /// Theorem 2's bound `B⊥ = |E|/2 − f` (messages; may be negative).
    pub b_lower_bound: i64,
    /// Total Vblocks across workers (the paper's `V`).
    pub num_vblocks: usize,
    /// The mode hybrid starts in (after Theorem 2 or override).
    pub initial_mode: Mode,
    /// Total vertices loaded across workers.
    pub num_vertices: u64,
    /// Vertices with at least one block-crossing in- or out-edge
    /// (GraphHP boundary set; 0 for non-`Async` jobs, which skip the
    /// classification pass).
    pub boundary_vertices: u64,
    /// Vertices all of whose edges stay inside their own Vblock (eligible
    /// for async pseudo-round iteration).
    pub interior_vertices: u64,
}

/// One recovered worker failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureEvent {
    /// Superstep in which the failure surfaced (0 = during loading).
    pub superstep: u64,
    /// The worker that died.
    pub worker: usize,
    /// The error it died with.
    pub error: String,
}

/// Checkpoint/recovery bookkeeping for one job.
#[derive(Clone, Debug, Default)]
pub struct RecoveryMetrics {
    /// Checkpoints committed (cluster-wide barriers, not per-worker files).
    pub checkpoints_taken: u64,
    /// Total checkpoint bytes written across workers (sequential writes).
    pub checkpoint_bytes: u64,
    /// Summed I/O of all checkpoint phases (the value-segment read plus
    /// the sequential checkpoint write, per worker).
    pub checkpoint_io: IoSnapshot,
    /// Cluster-wide (global) rollbacks performed: every worker reloaded
    /// its checkpoint.
    pub rollbacks: u64,
    /// Confined recoveries performed: only the failed worker reloaded its
    /// checkpoint while survivors re-served logged messages.
    pub confined_recoveries: u64,
    /// Checkpoint restores actually executed, summed over workers. A
    /// global rollback adds `workers`; a confined recovery adds 1 — the
    /// gap between this and `rollbacks × workers` is exactly what
    /// confinement saved.
    pub checkpoint_restores: u64,
    /// Supersteps re-executed because of rollbacks (lost work, every
    /// worker recomputing).
    pub recomputed_supersteps: u64,
    /// Supersteps the failed worker replayed from survivor logs during
    /// confined recoveries (survivors stayed idle apart from serving).
    pub replayed_supersteps: u64,
    /// Total bytes written to sender-side message logs across the job
    /// (zero unless message logging is on).
    pub msg_log_bytes: u64,
    /// The fault-aware adaptive checkpoint policy's final MTBF estimate
    /// (modeled seconds between observed failures), or 0.0 when no
    /// failure was observed. Informational — recorded whether or not
    /// [`fault_aware_checkpoint`](crate::config::JobConfig::fault_aware_checkpoint)
    /// was on.
    pub mtbf_secs: f64,
    /// Every failure the master recovered from, in order.
    pub failures: Vec<FailureEvent>,
}

/// Reliability-protocol overhead over one job — bytes and events the ARQ
/// layer spent masking an unreliable fabric. Deliberately **excluded**
/// from the cost model's byte counts (`Q_t`, Eqs. 7–8 and the per-step
/// network columns), which account each payload once at first send.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetOverhead {
    /// Payload bytes re-transmitted (timeouts) or duplicated by faults.
    pub retransmitted_bytes: u64,
    /// Frames discarded by receivers as already-delivered duplicates.
    pub duplicate_drops: u64,
    /// Frames the fault plan dropped on the wire.
    pub dropped_frames: u64,
    /// Frames the fault plan delayed in flight.
    pub delayed_frames: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
    /// Bytes re-served from message logs during confined recovery.
    pub replayed_bytes: u64,
}

/// Everything measured over one job.
#[derive(Clone, Debug)]
pub struct JobMetrics {
    /// Loading-phase report.
    pub load: LoadReport,
    /// One entry per executed superstep.
    pub steps: Vec<SuperstepMetrics>,
    /// `(superstep, from, to)` for every hybrid switch taken.
    pub switches: Vec<(u64, Mode, Mode)>,
    /// One [`QtAudit`] record per [`Switcher`](crate::switch::Switcher)
    /// evaluation: the full Eq. 11 inputs, the four terms, `Q_t` and the
    /// verdict. Empty for non-hybrid jobs. Render with
    /// [`hybridgraph_obs::render_table`].
    pub qt_audit: Vec<QtAudit>,
    /// Checkpoint and recovery activity.
    pub recovery: RecoveryMetrics,
    /// Reliability-protocol overhead (retransmissions, dup drops, acks,
    /// replay traffic) over the whole job.
    pub net_overhead: NetOverhead,
    /// The device profile the job ran under.
    pub profile: DeviceProfile,
}

impl JobMetrics {
    /// Number of supersteps executed.
    pub fn supersteps(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Total modeled seconds across supersteps.
    pub fn modeled_total_secs(&self) -> f64 {
        self.steps.iter().map(|s| s.modeled_secs).sum()
    }

    /// Total measured wall seconds across supersteps.
    pub fn wall_total_secs(&self) -> f64 {
        self.steps.iter().map(|s| s.wall_secs).sum()
    }

    /// Total physical I/O bytes over the whole job (Fig. 10's quantity).
    pub fn total_io_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.io.total_bytes()).sum()
    }

    /// Total logical (pre-compression) I/O bytes over the whole job.
    /// Equal to [`total_io_bytes`](Self::total_io_bytes) when the job ran
    /// with [`CodecChoice::None`](hybridgraph_storage::CodecChoice::None).
    pub fn total_io_logical_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.io.total_logical_bytes()).sum()
    }

    /// Physical / logical bytes over the whole job — the on-disk
    /// compression ratio (1.0 without a codec, smaller is better).
    pub fn io_compression_ratio(&self) -> f64 {
        let logical = self.total_io_logical_bytes();
        if logical == 0 {
            1.0
        } else {
            self.total_io_bytes() as f64 / logical as f64
        }
    }

    /// Total remote network bytes.
    pub fn total_net_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.net_out_bytes).sum()
    }

    /// Total raw messages produced.
    pub fn total_messages(&self) -> u64 {
        self.steps.iter().map(|s| s.messages_produced).sum()
    }

    /// Mean modeled seconds per superstep (what Figs. 7–9 report for
    /// fixed-superstep algorithms).
    pub fn modeled_secs_per_superstep(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.modeled_total_secs() / self.steps.len() as f64
        }
    }

    /// Peak per-superstep memory across the job.
    pub fn peak_memory_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.memory_bytes).max().unwrap_or(0)
    }

    /// Total cross-job shared-cache hits over the job.
    pub fn total_cache_hits(&self) -> u64 {
        self.steps.iter().map(|s| s.cache_hits).sum()
    }

    /// Total cross-job shared-cache misses over the job.
    pub fn total_cache_misses(&self) -> u64 {
        self.steps.iter().map(|s| s.cache_misses).sum()
    }

    /// Total async pseudo-rounds over the job (each is a block-local
    /// iteration a strict-BSP run would have paid a global barrier for;
    /// round 0 of every async superstep is the superstep itself).
    pub fn total_pseudo_rounds(&self) -> u64 {
        self.steps.iter().map(|s| s.asy.pseudo_rounds).sum()
    }

    /// Global barriers the async pseudo-rounds absorbed: pseudo-rounds
    /// beyond round 0, summed over async supersteps. A strict-BSP run
    /// making the same progress would have paid this many extra barriers.
    pub fn barriers_saved(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.asy.pseudo_rounds.saturating_sub(1))
            .sum()
    }

    /// Fraction of loaded vertices that updated in superstep `t`
    /// (1-based); 0.0 out of range or on an empty graph.
    pub fn active_fraction(&self, superstep: u64) -> f64 {
        if self.load.num_vertices == 0 {
            return 0.0;
        }
        self.steps
            .iter()
            .find(|s| s.superstep == superstep)
            .map(|s| s.updated as f64 / self.load.num_vertices as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_kind_classification() {
        assert_eq!(StepKind::Push.mode(), Mode::Push);
        assert_eq!(StepKind::PushNoSend.mode(), Mode::Push);
        assert_eq!(StepKind::BPullThenPush.mode(), Mode::BPull);
        assert!(StepKind::BPullThenPush.is_switch());
        assert!(!StepKind::BPull.is_switch());
        assert_eq!(StepKind::PushM.label(), "pushM");
        assert_eq!(StepKind::Async.mode(), Mode::Async);
        assert_eq!(StepKind::AsyncThenPush.mode(), Mode::Async);
        assert!(StepKind::AsyncThenPush.is_switch());
        assert!(!StepKind::Async.is_switch());
        assert_eq!(StepKind::Async.label(), "async");
        assert_eq!(StepKind::AsyncThenPush.label(), "async>push");
    }

    #[test]
    fn async_stats_merge_rules() {
        let mut a = AsyncStepStats {
            pseudo_rounds: 3,
            interior_updates: 10,
            interior_messages: 20,
            interior_msg_bytes: 160,
            boundary_active: 2,
            interior_active: 8,
            blocks_active: 2,
            blocks_converged: 1,
        };
        a.merge(&AsyncStepStats {
            pseudo_rounds: 5,
            interior_updates: 1,
            interior_messages: 2,
            interior_msg_bytes: 16,
            boundary_active: 1,
            interior_active: 1,
            blocks_active: 1,
            blocks_converged: 1,
        });
        assert_eq!(a.pseudo_rounds, 5, "rounds are a max across workers");
        assert_eq!(a.interior_updates, 11);
        assert_eq!(a.interior_msg_bytes, 176);
        assert_eq!(a.blocks_converged, 2);
    }

    #[test]
    fn semantic_cost_formulas() {
        let s = SemanticBytes {
            value_update_bytes: 10,
            push_edge_bytes: 20,
            bpull_edge_bytes: 30,
            fragment_aux_bytes: 4,
            svertex_rand_bytes: 6,
            msg_spill_bytes: 50,
        };
        assert_eq!(s.cio_push(), 10 + 20 + 100);
        assert_eq!(s.cio_bpull(), 10 + 30 + 4 + 6);
        let d = s.plus(&s);
        assert_eq!(d.msg_spill_bytes, 100);
        assert_eq!(d.cio_push(), 2 * s.cio_push());
    }

    #[test]
    fn job_metrics_totals() {
        let step = |secs: f64, io_bytes: u64| SuperstepMetrics {
            superstep: 1,
            kind: StepKind::Push,
            io: IoSnapshot {
                seq_read_bytes: io_bytes,
                ..Default::default()
            },
            sem: SemanticBytes::default(),
            net_out_bytes: 5,
            net_local_bytes: 0,
            net_raw_messages: 2,
            net_wire_values: 2,
            net_saved_messages: 0,
            net_requests: 0,
            updated: 1,
            responders: 1,
            messages_produced: 2,
            pending_messages: 0,
            cio_push_bytes: 0,
            cio_bpull_bytes: 0,
            mco: 0,
            q_metric: 0.0,
            memory_bytes: 7,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            modeled_secs: secs,
            modeled_io_secs: secs / 2.0,
            modeled_net_secs: secs / 2.0,
            wall_secs: secs,
            blocking_secs: 0.0,
            asy: AsyncStepStats::default(),
            max_residual: 0.0,
        };
        let m = JobMetrics {
            load: LoadReport::default(),
            steps: vec![step(1.0, 100), step(3.0, 200)],
            switches: vec![],
            qt_audit: vec![],
            recovery: RecoveryMetrics::default(),
            net_overhead: NetOverhead::default(),
            profile: DeviceProfile::local_hdd(),
        };
        assert_eq!(m.supersteps(), 2);
        assert_eq!(m.modeled_total_secs(), 4.0);
        assert_eq!(m.modeled_secs_per_superstep(), 2.0);
        assert_eq!(m.total_io_bytes(), 300);
        assert_eq!(m.total_net_bytes(), 10);
        assert_eq!(m.total_messages(), 4);
        assert_eq!(m.peak_memory_bytes(), 7);
        assert_eq!(m.total_pseudo_rounds(), 0);
        assert_eq!(m.barriers_saved(), 0);
        assert_eq!(m.active_fraction(1), 0.0, "no vertices loaded");
    }

    #[test]
    fn async_job_helpers() {
        let mut m = JobMetrics {
            load: LoadReport {
                num_vertices: 8,
                boundary_vertices: 3,
                interior_vertices: 5,
                ..Default::default()
            },
            steps: vec![],
            switches: vec![],
            qt_audit: vec![],
            recovery: RecoveryMetrics::default(),
            net_overhead: NetOverhead::default(),
            profile: DeviceProfile::local_hdd(),
        };
        let mut step = SuperstepMetrics {
            superstep: 1,
            kind: StepKind::Async,
            io: IoSnapshot::default(),
            sem: SemanticBytes::default(),
            net_out_bytes: 0,
            net_local_bytes: 0,
            net_raw_messages: 0,
            net_wire_values: 0,
            net_saved_messages: 0,
            net_requests: 0,
            updated: 4,
            responders: 4,
            messages_produced: 0,
            pending_messages: 0,
            cio_push_bytes: 0,
            cio_bpull_bytes: 0,
            mco: 0,
            q_metric: 0.0,
            memory_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            modeled_secs: 0.0,
            modeled_io_secs: 0.0,
            modeled_net_secs: 0.0,
            wall_secs: 0.0,
            blocking_secs: 0.0,
            asy: AsyncStepStats {
                pseudo_rounds: 3,
                ..Default::default()
            },
            max_residual: 0.5,
        };
        m.steps.push(step.clone());
        step.superstep = 2;
        step.asy.pseudo_rounds = 1;
        step.updated = 2;
        m.steps.push(step);
        assert_eq!(m.total_pseudo_rounds(), 4);
        assert_eq!(m.barriers_saved(), 2, "rounds beyond round 0");
        assert_eq!(m.active_fraction(1), 0.5);
        assert_eq!(m.active_fraction(2), 0.25);
        assert_eq!(m.active_fraction(9), 0.0);
    }
}
