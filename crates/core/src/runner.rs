//! The master: job orchestration (paper Fig. 1 and Algorithm 3).
//!
//! [`run_job`] spawns one OS thread per computational node, loads the
//! graph into each worker's stores, then drives supersteps: the master
//! broadcasts a step command, every worker executes it against the shared
//! network fabric, and the master's collection of all reports is the BSP
//! barrier. Between supersteps the master aggregates metrics, evaluates
//! the hybrid switching condition (`evaluate(...)` in Algorithm 3) and
//! checks termination (no responders and no pending messages, or the
//! superstep budget).

use crate::config::{JobConfig, Mode};
use crate::metrics::{JobMetrics, LoadReport, StepKind, StepReport, SuperstepMetrics};
use crate::modes::bpull::run_bpull_step;
use crate::modes::pull::run_pull_step;
use crate::modes::push::run_push_step;
use crate::program::VertexProgram;
use crate::switch::{self, b_lower_bound, q_metric, CostInputs, Switcher};
use crate::worker::{Worker, WorkerLoadReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hybridgraph_graph::{partition::vblock_counts, BlockLayout, Graph, Partition, WorkerId};
use hybridgraph_net::fabric::{Fabric, NetSnapshot};
use hybridgraph_storage::vfs::MemVfs;
use hybridgraph_storage::{IoSnapshot, Record};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// The outcome of a job: final vertex values plus everything measured.
pub struct JobResult<P: VertexProgram> {
    /// Final value per vertex, indexed by vertex id.
    pub values: Vec<P::Value>,
    /// Per-superstep and loading metrics.
    pub metrics: JobMetrics,
}

enum Cmd {
    Step { kind: StepKind, superstep: u64 },
    Collect,
    Exit,
}

enum WorkerMsg<V> {
    Loaded(usize, Box<WorkerLoadReport>),
    Step(usize, Box<StepReport>),
    Values(usize, u32, Vec<V>),
    Failed(usize, String),
}

/// Runs `program` over `graph` under `cfg` and returns the final values
/// and metrics.
///
/// # Panics
/// Panics if the configuration is inconsistent (e.g. `PushM` without a
/// combiner) or a worker fails.
pub fn run_job<P: VertexProgram>(
    program: Arc<P>,
    graph: &Graph,
    cfg: JobConfig,
) -> io::Result<JobResult<P>> {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(
        cfg.mode != Mode::PushM || program.combiner().is_some(),
        "pushM (message online computing) requires a combiner"
    );
    let n = graph.num_vertices();
    assert!(n > 0, "graph must have vertices");
    let t = cfg.workers;
    let combinable = program.combiner().is_some() && cfg.combining;
    let msg_bytes = 4 + P::Message::BYTES as u64;

    let partition = Arc::new(Partition::range(n, t));
    let counts = match cfg.vblocks_per_worker {
        Some(k) => vec![k.max(1); t],
        None if cfg.memory_limited() => {
            vblock_counts(graph, &partition, cfg.buffer_messages, combinable)
        }
        None => vec![1; t],
    };
    let layout = Arc::new(BlockLayout::new(&partition, &counts));
    let reverse = matches!(cfg.mode, Mode::Pull).then(|| graph.reverse());

    let (endpoints, net_stats) = Fabric::mesh(t);
    let (rep_tx, rep_rx) = unbounded::<WorkerMsg<P::Value>>();

    std::thread::scope(|scope| -> io::Result<JobResult<P>> {
        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(t);
        for (i, ep) in endpoints.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
            cmd_txs.push(cmd_tx);
            let program = Arc::clone(&program);
            let partition = Arc::clone(&partition);
            let layout = Arc::clone(&layout);
            let cfg = cfg.clone();
            let rep_tx = rep_tx.clone();
            let graph_ref = &*graph;
            let reverse_ref = reverse.as_ref();
            scope.spawn(move || {
                worker_main::<P>(
                    i,
                    program,
                    graph_ref,
                    reverse_ref,
                    partition,
                    layout,
                    cfg,
                    ep,
                    cmd_rx,
                    rep_tx,
                )
            });
        }
        drop(rep_tx);

        // ---- Load phase -------------------------------------------------
        let mut load_reports: Vec<WorkerLoadReport> = vec![WorkerLoadReport::default(); t];
        for _ in 0..t {
            match rep_rx.recv().expect("workers hung up during load") {
                WorkerMsg::Loaded(i, r) => load_reports[i] = *r,
                WorkerMsg::Failed(i, e) => panic!("worker {i} failed to load: {e}"),
                _ => unreachable!(),
            }
        }
        let fragments: u64 = load_reports.iter().map(|r| r.fragments).sum();
        let b_total: u64 = if cfg.memory_limited() {
            (cfg.buffer_messages as u64).saturating_mul(t as u64)
        } else {
            u64::MAX / 2
        };
        // Theorem 2 decides hybrid's initial mode from the message-buffer
        // capacity. With sufficient memory no message ever spills and the
        // sign of Q_t is dominated by b-pull's communication gain (§6.1:
        // "hybrid thereby runs b-pull"), so b-pull starts.
        let theorem2_mode = if cfg.memory_limited() {
            switch::initial_mode(b_total, graph.num_edges() as u64, fragments)
        } else {
            Mode::BPull
        };
        let initial = match cfg.mode {
            Mode::Hybrid => cfg.initial_mode_override.unwrap_or(theorem2_mode),
            m => m,
        };
        let load = LoadReport {
            wall_secs: load_reports
                .iter()
                .map(|r| r.wall_secs)
                .fold(0.0, f64::max),
            io: load_reports
                .iter()
                .fold(IoSnapshot::default(), |acc, r| acc.plus(&r.io)),
            fragments,
            b_lower_bound: b_lower_bound(graph.num_edges() as u64, fragments),
            num_vblocks: layout.num_blocks(),
            initial_mode: initial,
        };

        // ---- Superstep loop ---------------------------------------------
        let mut cur = initial;
        let mut switcher = Switcher::new(
            if matches!(initial, Mode::Push | Mode::BPull) {
                initial
            } else {
                Mode::Push
            },
            cfg.switch_interval,
            cfg.switch_threshold,
        );
        let mut pending_kind: Option<StepKind> = None;
        let mut steps: Vec<SuperstepMetrics> = Vec::new();
        let mut switches: Vec<(u64, Mode, Mode)> = Vec::new();
        let mut net_base = net_stats.snapshot();
        let max_steps = program
            .max_supersteps()
            .unwrap_or(u64::MAX)
            .min(cfg.max_supersteps);

        let mut superstep = 0u64;
        while superstep < max_steps {
            superstep += 1;
            let kind = match cfg.mode {
                Mode::Push => StepKind::Push,
                Mode::PushM => StepKind::PushM,
                Mode::Pull => StepKind::Pull,
                Mode::BPull => StepKind::BPull,
                Mode::Hybrid => pending_kind.take().unwrap_or(match cur {
                    Mode::Push => StepKind::Push,
                    Mode::BPull => StepKind::BPull,
                    _ => unreachable!("hybrid only alternates push and b-pull"),
                }),
            };
            let t_step = Instant::now();
            for tx in &cmd_txs {
                tx.send(Cmd::Step { kind, superstep }).expect("worker gone");
            }
            let mut reports: Vec<StepReport> = vec![StepReport::default(); t];
            for _ in 0..t {
                match rep_rx.recv().expect("workers hung up mid-superstep") {
                    WorkerMsg::Step(i, r) => reports[i] = *r,
                    WorkerMsg::Failed(i, e) => panic!("worker {i} failed: {e}"),
                    _ => unreachable!(),
                }
            }
            let wall = t_step.elapsed().as_secs_f64();
            let net_now = net_stats.snapshot();
            let net_delta = net_now.delta(&net_base);
            net_base = net_now;

            let (metrics, q_inputs) = aggregate(
                superstep,
                kind,
                &reports,
                &net_delta,
                &cfg,
                &mut switcher,
                b_total,
                msg_bytes,
                combinable,
                wall,
            );
            let pending = metrics.pending_messages;
            let responders = metrics.responders;
            let step_secs = metrics.modeled_secs;
            steps.push(metrics);

            if pending == 0 && responders == 0 {
                break;
            }
            if cfg.mode == Mode::Hybrid && superstep + 1 < max_steps {
                if let Some(new_mode) =
                    switcher.decide(superstep, &cfg.profile, &q_inputs, step_secs)
                {
                    let from = cur;
                    pending_kind = Some(match new_mode {
                        Mode::Push => StepKind::BPullThenPush,
                        Mode::BPull => StepKind::PushNoSend,
                        _ => unreachable!(),
                    });
                    cur = new_mode;
                    switches.push((superstep + 1, from, new_mode));
                }
            }
        }

        // ---- Collect ----------------------------------------------------
        for tx in &cmd_txs {
            tx.send(Cmd::Collect).expect("worker gone");
        }
        let mut values: Vec<Option<Vec<P::Value>>> = vec![None; t];
        let mut bases: Vec<u32> = vec![0; t];
        for _ in 0..t {
            match rep_rx.recv().expect("workers hung up during collect") {
                WorkerMsg::Values(i, base, vals) => {
                    bases[i] = base;
                    values[i] = Some(vals);
                }
                WorkerMsg::Failed(i, e) => panic!("worker {i} failed during collect: {e}"),
                _ => unreachable!(),
            }
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Exit).ok();
        }
        let mut all = Vec::with_capacity(n);
        let mut pairs: Vec<(u32, Vec<P::Value>)> = bases
            .into_iter()
            .zip(values.into_iter().map(|v| v.unwrap()))
            .collect();
        pairs.sort_by_key(|(b, _)| *b);
        for (_, vals) in pairs {
            all.extend(vals);
        }
        debug_assert_eq!(all.len(), n);

        Ok(JobResult {
            values: all,
            metrics: JobMetrics {
                load,
                steps,
                switches,
                profile: cfg.profile,
            },
        })
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_main<P: VertexProgram>(
    index: usize,
    program: Arc<P>,
    graph: &Graph,
    reverse: Option<&Graph>,
    partition: Arc<Partition>,
    layout: Arc<BlockLayout>,
    cfg: JobConfig,
    ep: hybridgraph_net::fabric::Endpoint,
    cmd_rx: Receiver<Cmd>,
    rep_tx: Sender<WorkerMsg<P::Value>>,
) {
    let id = WorkerId::from(index);
    let vfs: Arc<dyn hybridgraph_storage::vfs::Vfs> = match &cfg.disk_root {
        Some(root) => match hybridgraph_storage::vfs::DirVfs::new(root.join(format!("w{index}"))) {
            Ok(v) => Arc::new(v),
            Err(e) => {
                rep_tx.send(WorkerMsg::Failed(index, e.to_string())).ok();
                return;
            }
        },
        None => Arc::new(MemVfs::new()),
    };
    let (mut worker, load) = match Worker::load(
        id, program, graph, reverse, partition, layout, cfg, ep, vfs,
    ) {
        Ok(x) => x,
        Err(e) => {
            rep_tx.send(WorkerMsg::Failed(index, e.to_string())).ok();
            return;
        }
    };
    rep_tx
        .send(WorkerMsg::Loaded(index, Box::new(load)))
        .expect("master gone");
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            Cmd::Step { kind, superstep } => {
                let res = match kind {
                    StepKind::Push => run_push_step(&mut worker, superstep, true, false),
                    StepKind::PushNoSend => run_push_step(&mut worker, superstep, false, false),
                    StepKind::PushM => run_push_step(&mut worker, superstep, true, true),
                    StepKind::Pull => run_pull_step(&mut worker, superstep),
                    StepKind::BPull => run_bpull_step(&mut worker, superstep, false),
                    StepKind::BPullThenPush => run_bpull_step(&mut worker, superstep, true),
                };
                match res {
                    Ok(rep) => rep_tx
                        .send(WorkerMsg::Step(index, Box::new(rep)))
                        .expect("master gone"),
                    Err(e) => {
                        rep_tx.send(WorkerMsg::Failed(index, e.to_string())).ok();
                        return;
                    }
                }
            }
            Cmd::Collect => match worker.collect_values() {
                Ok(vals) => rep_tx
                    .send(WorkerMsg::Values(index, worker.range.start, vals))
                    .expect("master gone"),
                Err(e) => {
                    rep_tx.send(WorkerMsg::Failed(index, e.to_string())).ok();
                    return;
                }
            },
            Cmd::Exit => return,
        }
    }
}

/// Builds the master-side superstep metrics from worker reports.
#[allow(clippy::too_many_arguments)]
fn aggregate(
    superstep: u64,
    kind: StepKind,
    reports: &[StepReport],
    net: &NetSnapshot,
    cfg: &JobConfig,
    switcher: &mut Switcher,
    b_total: u64,
    msg_bytes: u64,
    combinable: bool,
    wall: f64,
) -> (SuperstepMetrics, CostInputs) {
    let sem = reports
        .iter()
        .fold(crate::metrics::SemanticBytes::default(), |acc, r| {
            acc.plus(&r.sem)
        });
    let io = reports
        .iter()
        .fold(IoSnapshot::default(), |acc, r| acc.plus(&r.io));
    let sum = |f: fn(&StepReport) -> u64| reports.iter().map(f).sum::<u64>();
    let produced = sum(|r| r.messages_produced);
    let delivered_raw = sum(|r| r.delivered_raw);
    let delivered_distinct = sum(|r| r.delivered_distinct);

    // Modeled time: max over workers of io + net + cpu.
    let mut modeled = 0.0f64;
    let mut modeled_io = 0.0f64;
    let mut modeled_net = 0.0f64;
    for (i, r) in reports.iter().enumerate() {
        let io_secs = r.io.modeled_secs(&cfg.profile);
        let net_secs = cfg
            .profile
            .net_secs(net.out_bytes[i] + net.in_bytes[i]);
        let cpu_secs = (cfg.cpu_us_per_message
            * (r.messages_produced + r.messages_consumed) as f64
            + cfg.cpu_us_per_vertex * r.updated as f64)
            * 1e-6;
        modeled = modeled.max(io_secs + net_secs + cpu_secs);
        modeled_io = modeled_io.max(io_secs);
        modeled_net = modeled_net.max(net_secs);
    }

    // Push-side quantities: actual when push ran, estimated otherwise.
    let push_ran = matches!(kind, StepKind::Push | StepKind::PushM);
    let pull_ran = matches!(kind, StepKind::BPull | StepKind::BPullThenPush);
    let mdisk_est = msg_bytes * produced.saturating_sub(b_total);
    let (io_e_push, io_mdisk) = if push_ran {
        (sem.push_edge_bytes, sem.msg_spill_bytes)
    } else {
        (sum(|r| r.next_push_edge_bytes), mdisk_est)
    };
    let (io_e_bpull, io_f, io_vrr) = if pull_ran {
        (
            sem.bpull_edge_bytes,
            sem.fragment_aux_bytes,
            sem.svertex_rand_bytes,
        )
    } else {
        (
            sum(|r| r.next_bpull_edge_bytes),
            sum(|r| r.next_bpull_aux_bytes),
            sum(|r| r.next_bpull_vrr_bytes),
        )
    };

    // M_co: observed in (b-)pull supersteps, estimated in push ones.
    let mco = if pull_ran {
        let saved = net.total_saved_messages();
        switcher.observe_rco(saved, net.total_raw_messages());
        saved
    } else {
        let distinct_est = if delivered_raw > 0 {
            ((delivered_distinct as f64 / delivered_raw as f64) * produced as f64) as u64
        } else {
            produced // unknown: assume no sharing -> M_co estimate 0
        };
        switcher.estimate_mco(produced, distinct_est.min(produced))
    };

    let cio_push_bytes = sem.value_update_bytes + io_e_push + 2 * io_mdisk;
    let cio_bpull_bytes = sem.value_update_bytes + io_e_bpull + io_f + io_vrr;
    let inputs = CostInputs {
        mco,
        bytes_per_saved: if combinable { msg_bytes } else { 4 },
        io_mdisk,
        io_vrr,
        io_e_push,
        io_e_bpull,
        io_f,
    };
    let q = q_metric(&cfg.profile, &inputs);

    let metrics = SuperstepMetrics {
        superstep,
        kind,
        io,
        sem,
        net_out_bytes: net.total_remote_bytes(),
        net_local_bytes: net.local_bytes.iter().sum(),
        net_raw_messages: net.total_raw_messages(),
        net_wire_values: net.wire_values_out.iter().sum(),
        net_saved_messages: net.total_saved_messages(),
        net_requests: net.total_requests(),
        updated: sum(|r| r.updated),
        responders: sum(|r| r.responders),
        messages_produced: produced,
        pending_messages: sum(|r| r.pending_messages),
        cio_push_bytes,
        cio_bpull_bytes,
        mco,
        q_metric: q,
        memory_bytes: sum(|r| r.memory_bytes),
        modeled_secs: modeled,
        modeled_io_secs: modeled_io,
        modeled_net_secs: modeled_net,
        wall_secs: wall,
        blocking_secs: reports.iter().map(|r| r.blocking_secs).fold(0.0, f64::max),
    };
    (metrics, inputs)
}
