//! The master: job orchestration (paper Fig. 1 and Algorithm 3) plus the
//! checkpoint/recovery protocol.
//!
//! [`run_job`] spawns one OS thread per computational node, loads the
//! graph into each worker's stores, then drives supersteps: the master
//! broadcasts a step command, every worker executes it against the shared
//! network fabric, and the master's collection of all reports is the BSP
//! barrier. Between supersteps the master aggregates metrics, evaluates
//! the hybrid switching condition (`evaluate(...)` in Algorithm 3) and
//! checks termination (no responders and no pending messages, or the
//! superstep budget).
//!
//! # Fault tolerance
//!
//! When [`JobConfig::checkpoint`] is not [`CheckpointPolicy::Never`], the
//! master takes a baseline checkpoint right after loading and further
//! checkpoints at superstep barriers per the policy. Each checkpoint is
//! one classified sequential write per worker (see
//! `hybridgraph_storage::checkpoint`), and the master snapshots its own
//! superstep cursor — the hybrid [`Switcher`], current mode, and pending
//! transition step — in memory alongside it.
//!
//! A worker failure (injected via [`FaultPlan`](crate::fault::FaultPlan)
//! or genuine) surfaces as a [`WorkerMsg::Failed`] carrying the dead
//! worker's network [`Endpoint`] back to the master. The master then
//! broadcasts [`Packet::Abort`] over the control plane so surviving
//! workers blocked mid-exchange unwind (they answer `Aborted` and stay
//! alive), respawns the failed worker's thread onto the *same* VFS and
//! endpoint, orders every worker to roll back to the last checkpoint,
//! restores its own snapshot, and resumes from the checkpointed
//! superstep. Without a usable checkpoint — policy `Never`, a lost
//! endpoint, or an exhausted [`JobConfig::max_recoveries`] budget — the
//! job returns [`JobError::WorkerFailed`] instead of panicking.
//!
//! # Confined recovery
//!
//! With [`JobConfig::message_logging`] on, every worker additionally
//! writes its superstep's outgoing remote packets as one log segment
//! (one classified sequential write), and a single failure at superstep
//! `t` recovers Pregel-style *confined*: only the dead worker rolls back
//! to the checkpoint `ck` and re-executes `ck+1..t-1` with its inputs
//! re-served from the survivors' logs, while the survivors merely revert
//! superstep `t` in memory (pre-images captured when the step started)
//! — they never reload a checkpoint. Each recovery bumps a fabric
//! *epoch*; endpoints reset to it so in-flight ARQ frames from before
//! the failure can never leak into the re-execution. When the
//! preconditions fail — logging off, several simultaneous deaths,
//! missing/truncated log segments, or a mode whose receive state is not
//! undoable (`pull`'s LRU cache, `pushM`'s order-sensitive online
//! combining) — the master falls back to the global rollback above.

use crate::config::{CheckpointPolicy, JobConfig, Mode};
use crate::fault::{FaultPhase, MasterKillPoint};
use crate::metrics::{
    FailureEvent, JobMetrics, LoadReport, NetOverhead, RecoveryMetrics, StepKind, StepReport,
    SuperstepMetrics,
};
use crate::modes::bpull::run_bpull_step;
use crate::modes::hybrid_async::run_async_step;
use crate::modes::pull::run_pull_step;
use crate::modes::push::run_push_step;
use crate::program::VertexProgram;
use crate::snapshot::{adaptive_spacing_secs, MasterState, MtbfEstimator};
use crate::switch::{self, b_lower_bound, q_metric, AsyncCostInputs, CostInputs, Switcher};
use crate::worker::{Worker, WorkerLoadReport, WorkerSeed};
use hybridgraph_graph::{partition::vblock_counts, BlockLayout, Graph, Partition, WorkerId};
use hybridgraph_net::fabric::{Endpoint, Fabric, NetSnapshot};
use hybridgraph_net::packet::Packet;
use hybridgraph_obs::{secs_to_us, QtTiers};
use hybridgraph_storage::msg_log::{self, MsgLogReader};
use hybridgraph_storage::vfs::{DirVfs, MemVfs, Vfs};
use hybridgraph_storage::{IoSnapshot, Record};
use std::fmt;
use std::io;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The outcome of a job: final vertex values plus everything measured.
pub struct JobResult<P: VertexProgram> {
    /// Final value per vertex, indexed by vertex id.
    pub values: Vec<P::Value>,
    /// Per-superstep and loading metrics.
    pub metrics: JobMetrics,
}

impl<P: VertexProgram> fmt::Debug for JobResult<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobResult")
            .field("vertices", &self.values.len())
            .field("supersteps", &self.metrics.supersteps())
            .finish()
    }
}

/// Why a job did not produce a result.
#[derive(Debug)]
pub enum JobError {
    /// A worker failed and the job could not recover: the checkpoint
    /// policy is [`CheckpointPolicy::Never`], no checkpoint exists yet,
    /// the recovery budget is exhausted, or the worker died in a way
    /// that lost its network endpoint.
    WorkerFailed {
        /// Which worker failed.
        worker: usize,
        /// The superstep it failed in (0 = loading).
        superstep: u64,
        /// The underlying error message.
        error: String,
    },
    /// The job exceeded one of its configured budgets
    /// ([`JobConfig::logical_io_budget`] /
    /// [`JobConfig::memory_budget`]) and was terminated at a superstep
    /// barrier. Budget checks read only this job's own metrics, so a
    /// multi-tenant service can enforce per-job limits without any
    /// cross-job accounting.
    BudgetExceeded {
        /// The barrier at which the breach was detected (0 = loading).
        superstep: u64,
        /// Which budget: `"logical_io"` or `"memory"`.
        resource: &'static str,
        /// Observed usage (cumulative logical bytes, or the superstep's
        /// summed memory high-water mark).
        used: u64,
        /// The configured limit.
        budget: u64,
    },
    /// The master was killed by an injected master-kill fault — a
    /// simulated crash of the whole service process at a seeded point
    /// (see [`MasterKillPoint`]). Worker threads shut down cleanly; a
    /// durable service can later resume the job from its last committed
    /// cut via `GraphService::restore`.
    Halted {
        /// The kill point that fired.
        point: MasterKillPoint,
    },
    /// An I/O error outside any worker (e.g. creating the disk roots).
    Io(io::Error),
}

impl JobError {
    /// Stable numeric code for wire protocols: clients match on the code
    /// instead of parsing the display string. Codes are append-only —
    /// never renumber.
    ///
    /// | code | variant          |
    /// |------|------------------|
    /// | 1    | `WorkerFailed`   |
    /// | 2    | `BudgetExceeded` |
    /// | 3    | `Halted`         |
    /// | 4    | `Io`             |
    pub fn code(&self) -> u16 {
        match self {
            JobError::WorkerFailed { .. } => 1,
            JobError::BudgetExceeded { .. } => 2,
            JobError::Halted { .. } => 3,
            JobError::Io(_) => 4,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::WorkerFailed {
                worker,
                superstep,
                error,
            } => write!(
                f,
                "worker {worker} failed in superstep {superstep} and the job \
                 could not recover: {error}"
            ),
            JobError::BudgetExceeded {
                superstep,
                resource,
                used,
                budget,
            } => write!(
                f,
                "job exceeded its {resource} budget at superstep {superstep}: \
                 used {used} of {budget}"
            ),
            JobError::Halted { point } => {
                write!(f, "master halted by injected kill at {point:?}")
            }
            JobError::Io(e) => write!(f, "job I/O error: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Io(e) => Some(e),
            JobError::WorkerFailed { .. }
            | JobError::BudgetExceeded { .. }
            | JobError::Halted { .. } => None,
        }
    }
}

impl From<io::Error> for JobError {
    fn from(e: io::Error) -> Self {
        JobError::Io(e)
    }
}

enum Cmd {
    Step {
        kind: StepKind,
        superstep: u64,
        /// Master's modeled clock (µs) when the step was issued; workers
        /// lay their phase spans from this base so every track shares one
        /// deterministic timeline.
        base_us: u64,
    },
    /// Write the checkpoint for `superstep`; optionally prune the one at
    /// `prune` afterwards (retention 1). With message logging on, log
    /// segments at or before `superstep` are pruned too — a future
    /// failure replays from this cut, so they can never be needed again.
    Checkpoint {
        superstep: u64,
        prune: Option<u64>,
    },
    /// Reset the endpoint to the fabric `epoch` and restore the
    /// checkpoint taken after `superstep`.
    Rollback {
        superstep: u64,
        epoch: u64,
    },
    /// Confined recovery, survivor side: reset the endpoint to `epoch`
    /// and revert exactly the last captured superstep in memory.
    UndoStep {
        epoch: u64,
    },
    /// Confined recovery, survivor side: re-serve the log segment of
    /// `superstep`, forwarding the entries addressed to worker `target`.
    ReplayServe {
        superstep: u64,
        target: usize,
    },
    /// Confined recovery, respawned-worker side: re-execute `superstep`
    /// with remote sends suppressed (peers already processed the
    /// originals) and inputs arriving from the survivors' logs.
    ReplayStep {
        kind: StepKind,
        superstep: u64,
    },
    Collect,
    Exit,
}

enum WorkerMsg<V> {
    Loaded(usize, Box<WorkerLoadReport>),
    Step(usize, Box<StepReport>),
    /// The worker unwound from an aborted superstep and is awaiting
    /// commands.
    Aborted(usize),
    /// Checkpoint written; payload is the bytes it occupies on disk.
    Checkpointed(usize, u64),
    RolledBack(usize),
    /// Survivor reverted its last captured superstep (confined recovery).
    Undone(usize),
    /// Survivor finished re-serving one log segment.
    Served(usize),
    /// Respawned worker finished re-executing one replayed superstep.
    Replayed(usize),
    Values(usize, u32, Vec<V>),
    /// The worker died. It hands its fabric endpoint back when it can so
    /// the master can respawn a replacement onto the same slot.
    Failed {
        index: usize,
        error: String,
        endpoint: Option<Box<Endpoint>>,
    },
}

/// Master-side state captured alongside each checkpoint so a rollback
/// also rewinds the superstep cursor and the hybrid switching engine.
struct MasterSnapshot {
    switcher: Switcher,
    cur: Mode,
    pending_kind: Option<StepKind>,
    steps_len: usize,
    switches_len: usize,
}

/// Orders every worker to checkpoint `superstep`, waits for all acks, and
/// records bytes/IO into `recovery`. Returns the largest per-worker
/// checkpoint size (the adaptive policy's cost estimate input).
fn checkpoint_all<V>(
    cmd_txs: &[Sender<Cmd>],
    rep_rx: &Receiver<WorkerMsg<V>>,
    vfss: &[Arc<dyn Vfs>],
    recovery: &mut RecoveryMetrics,
    superstep: u64,
    prune: Option<u64>,
) -> Result<u64, JobError> {
    let before: Vec<IoSnapshot> = vfss.iter().map(|v| v.stats().snapshot()).collect();
    for tx in cmd_txs {
        tx.send(Cmd::Checkpoint { superstep, prune })
            .expect("worker gone");
    }
    let mut max_bytes = 0u64;
    let mut acked = vec![false; cmd_txs.len()];
    for _ in 0..cmd_txs.len() {
        match rep_rx.recv().expect("workers hung up during checkpoint") {
            WorkerMsg::Checkpointed(i, bytes) => {
                assert!(!acked[i], "duplicate checkpoint ack from worker {i}");
                acked[i] = true;
                recovery.checkpoint_bytes += bytes;
                max_bytes = max_bytes.max(bytes);
            }
            WorkerMsg::Failed { index, error, .. } => {
                return Err(JobError::WorkerFailed {
                    worker: index,
                    superstep,
                    error,
                });
            }
            _ => unreachable!("unexpected message during checkpoint"),
        }
    }
    for (vfs, base) in vfss.iter().zip(&before) {
        let delta = vfs.stats().snapshot().delta(base);
        recovery.checkpoint_io = recovery.checkpoint_io.plus(&delta);
    }
    recovery.checkpoints_taken += 1;
    Ok(max_bytes)
}

/// True if every survivor holds a readable log segment for every
/// superstep the failed worker must replay (`ck+1..t`). A missing or
/// truncated segment fails validation and recovery falls back to the
/// global rollback.
fn confined_logs_ok(vfss: &[Arc<dyn Vfs>], failed: usize, ck: u64, failed_step: u64) -> bool {
    vfss.iter().enumerate().all(|(i, vfs)| {
        i == failed || ((ck + 1)..failed_step).all(|s| MsgLogReader::open(vfs.as_ref(), s).is_ok())
    })
}

/// Runs `program` over `graph` under `cfg` and returns the final values
/// and metrics, or a [`JobError`] if a worker failure could not be
/// recovered.
///
/// # Panics
/// Panics if the configuration is inconsistent (e.g. `PushM` without a
/// combiner).
pub fn run_job<P: VertexProgram>(
    program: Arc<P>,
    graph: &Graph,
    cfg: JobConfig,
) -> Result<JobResult<P>, JobError> {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(
        cfg.mode != Mode::PushM || program.combiner().is_some(),
        "pushM (message online computing) requires a combiner"
    );
    let n = graph.num_vertices();
    assert!(n > 0, "graph must have vertices");
    let t = cfg.workers;
    let combinable = program.combiner().is_some() && cfg.combining;
    let msg_bytes = 4 + P::Message::BYTES as u64;

    let partition = Arc::new(Partition::range(n, t));
    let counts = match cfg.vblocks_per_worker {
        Some(k) => vec![k.max(1); t],
        None if cfg.memory_limited() => {
            vblock_counts(graph, &partition, cfg.buffer_messages, combinable)
        }
        None => vec![1; t],
    };
    let layout = Arc::new(BlockLayout::new(&partition, &counts));
    let reverse = matches!(cfg.mode, Mode::Pull).then(|| graph.reverse());
    // Async jobs classify every vertex boundary/interior against the
    // VE-BLOCK layout once, master-side; workers share the read-only view
    // (a respawned worker reattaches to the same classification).
    let classification = matches!(cfg.mode, Mode::Async).then(|| {
        Arc::new(crate::blockexec::BlockClassification::classify(
            graph, &layout,
        ))
    });

    // The master holds each worker's VFS so a respawned worker thread
    // reattaches to the same (simulated or real) disk — that is what
    // makes its checkpoints reachable after the thread died. A durable
    // service passes its own disks in (`worker_disks`), which is what
    // makes them reachable after the *master process* died.
    let mut vfss: Vec<Arc<dyn Vfs>> = Vec::with_capacity(t);
    match &cfg.worker_disks {
        Some(d) => {
            assert_eq!(d.0.len(), t, "worker_disks count must match workers");
            vfss.extend(d.0.iter().map(Arc::clone));
        }
        None => {
            for i in 0..t {
                vfss.push(match &cfg.disk_root {
                    Some(root) => Arc::new(DirVfs::new(root.join(format!("w{i}")))?),
                    None => Arc::new(MemVfs::new()),
                });
            }
        }
    }

    let (endpoints, net_stats, control) = Fabric::mesh_with_control(t);
    // A seeded network-fault schedule attached to the fault plan makes
    // every endpoint's wire unreliable; the ARQ layer absorbs it.
    if let Some(np) = cfg.fault_plan.as_ref().and_then(|p| p.net_plan()) {
        for ep in &endpoints {
            ep.install_faults(Arc::clone(np));
        }
    }
    let (rep_tx, rep_rx) = channel::<WorkerMsg<P::Value>>();

    std::thread::scope(|scope| -> Result<JobResult<P>, JobError> {
        let graph_ref = &*graph;
        let reverse_ref = reverse.as_ref();
        // Spawns (or respawns) worker `i` on `ep` with a fresh command
        // channel receiver. The master keeps `rep_tx` alive for the whole
        // job so late respawns can still clone it.
        let spawn_worker = |i: usize, ep: Endpoint, cmd_rx: Receiver<Cmd>| {
            let seed = WorkerSeed {
                id: WorkerId::from(i),
                program: Arc::clone(&program),
                graph: graph_ref,
                reverse: reverse_ref,
                partition: Arc::clone(&partition),
                layout: Arc::clone(&layout),
                cfg: cfg.clone(),
                ep,
                vfs: Arc::clone(&vfss[i]),
                classification: classification.clone(),
            };
            let rep_tx = rep_tx.clone();
            scope.spawn(move || worker_main::<P>(seed, cmd_rx, rep_tx));
        };

        // Cooperative pacing: under a multi-job scheduler the master holds
        // a grant for each unit of work (load, one superstep, collect) so
        // the cross-job interleaving replays deterministically. Unpaced
        // jobs skip every hook.
        let pacer = cfg.pacer.clone();
        if let Some(p) = &pacer {
            p.acquire(); // covers the load phase (workers load on spawn)
        }

        let mut cmd_txs: Vec<Sender<Cmd>> = Vec::with_capacity(t);
        let mut pending_rx: Vec<Receiver<Cmd>> = Vec::with_capacity(t);
        for _ in 0..t {
            let (tx, rx) = channel::<Cmd>();
            cmd_txs.push(tx);
            pending_rx.push(rx);
        }
        for (i, (ep, rx)) in endpoints.into_iter().zip(pending_rx).enumerate() {
            spawn_worker(i, ep, rx);
        }

        let mut recovery = RecoveryMetrics::default();
        let mut recoveries_used = 0u64;
        let mut mtbf = MtbfEstimator::new();
        // Seeded master-kill hooks: each fires at most once (also across
        // checks), simulating the service process dying at that point.
        let master_killed = |point: MasterKillPoint| -> bool {
            cfg.fault_plan
                .as_ref()
                .is_some_and(|p| p.master_kill_at(point))
        };

        // ---- Load phase -------------------------------------------------
        // Workers do not exchange packets while loading, so a load-phase
        // failure needs no abort or rollback: respawn and reload.
        let mut load_reports: Vec<WorkerLoadReport> = vec![WorkerLoadReport::default(); t];
        let mut loaded = 0usize;
        while loaded < t {
            match rep_rx.recv().expect("workers hung up during load") {
                WorkerMsg::Loaded(i, r) => {
                    load_reports[i] = *r;
                    loaded += 1;
                }
                WorkerMsg::Failed {
                    index,
                    error,
                    endpoint,
                } => {
                    recovery.failures.push(FailureEvent {
                        superstep: 0,
                        worker: index,
                        error: error.clone(),
                    });
                    mtbf.observe();
                    let recoverable = cfg.checkpoint != CheckpointPolicy::Never
                        && recoveries_used < cfg.max_recoveries;
                    match endpoint {
                        Some(ep) if recoverable => {
                            recoveries_used += 1;
                            let (tx, rx) = channel::<Cmd>();
                            cmd_txs[index] = tx;
                            spawn_worker(index, *ep, rx);
                        }
                        _ => {
                            return Err(JobError::WorkerFailed {
                                worker: index,
                                superstep: 0,
                                error,
                            })
                        }
                    }
                }
                _ => unreachable!("unexpected message during load"),
            }
        }
        // Simulated master crash while loading: the job dies before any
        // durable cut exists, so a restore re-runs it from scratch.
        if master_killed(MasterKillPoint::Load) {
            return Err(JobError::Halted {
                point: MasterKillPoint::Load,
            });
        }
        // ---- Observability ---------------------------------------------
        // The sink, when installed, is purely additive: it reads counters
        // the cost model maintains anyway, so tracing on/off changes no
        // byte count and no Q_t decision. Timestamps are *modeled* time
        // (DeviceProfile seconds → µs), which makes two same-seed runs
        // emit byte-identical traces regardless of wall-clock jitter.
        let sink = cfg.trace.clone();
        if let Some(s) = &sink {
            assert_eq!(
                s.num_workers(),
                t,
                "TraceSink was built for a different worker count"
            );
        }
        let net_plan = cfg.fault_plan.as_ref().and_then(|p| p.net_plan()).cloned();
        // Fault-plan fired counters are deterministic at superstep
        // barriers (each selected frame fires its drops before the
        // receiver can complete the step; duplicates/delays fire on the
        // first attempt only), so their deltas may go into the trace.
        let fired = |p: &Arc<hybridgraph_net::netfault::NetFaultPlan>| {
            (p.drops_fired(), p.duplicates_fired(), p.delays_fired())
        };
        let mut faults_base = net_plan.as_ref().map(&fired).unwrap_or((0, 0, 0));
        let mut audit_seen = 0usize;

        let fragments: u64 = load_reports.iter().map(|r| r.fragments).sum();
        let b_total: u64 = if cfg.memory_limited() {
            (cfg.buffer_messages as u64).saturating_mul(t as u64)
        } else {
            u64::MAX / 2
        };
        // Theorem 2 decides hybrid's initial mode from the message-buffer
        // capacity. With sufficient memory no message ever spills and the
        // sign of Q_t is dominated by b-pull's communication gain (§6.1:
        // "hybrid thereby runs b-pull"), so b-pull starts.
        let theorem2_mode = if cfg.memory_limited() {
            switch::initial_mode(b_total, graph.num_edges() as u64, fragments)
        } else {
            Mode::BPull
        };
        let initial = match cfg.mode {
            Mode::Hybrid => cfg.initial_mode_override.unwrap_or(theorem2_mode),
            m => m,
        };
        let load = LoadReport {
            wall_secs: load_reports.iter().map(|r| r.wall_secs).fold(0.0, f64::max),
            io: load_reports
                .iter()
                .fold(IoSnapshot::default(), |acc, r| acc.plus(&r.io)),
            fragments,
            b_lower_bound: b_lower_bound(graph.num_edges() as u64, fragments),
            num_vblocks: layout.num_blocks(),
            initial_mode: initial,
            num_vertices: n as u64,
            boundary_vertices: classification.as_ref().map_or(0, |c| c.boundary_total),
            interior_vertices: classification.as_ref().map_or(0, |c| c.interior_total),
        };
        // Modeled load time: the slowest worker's classified I/O.
        let load_modeled_secs = load_reports
            .iter()
            .map(|r| r.io.modeled_secs(&cfg.profile))
            .fold(0.0, f64::max);
        // ---- Resume (durable restart) -----------------------------------
        // A resume state is the `MasterState` a previous incarnation of
        // this job committed through its barrier sink before the master
        // process died. The workers above reloaded from scratch —
        // byte-identically to the original load (fresh per-job stats,
        // same shared stores) — and are now rolled onto the committed
        // checkpoint while the master rewinds itself to the same cut. No
        // load span is emitted and no recovery metric moves: this is a
        // process restart, not an in-job failure.
        let resume_state = match &cfg.resume {
            Some(r) => Some(MasterState::decode(&r.0[..])?),
            None => None,
        };
        if resume_state.is_none() {
            if let Some(s) = &sink {
                s.master().span(
                    "load",
                    secs_to_us(load_modeled_secs),
                    vec![
                        ("fragments", load.fragments.into()),
                        ("vblocks", (load.num_vblocks as u64).into()),
                        ("b_lower_bound", load.b_lower_bound.into()),
                        ("initial_mode", load.initial_mode.label().into()),
                    ],
                );
            }
        }

        // ---- Superstep loop ---------------------------------------------
        let mut cur = initial;
        let mut switcher = Switcher::new(
            if matches!(initial, Mode::Push | Mode::BPull | Mode::Async) {
                initial
            } else {
                Mode::Push
            },
            cfg.switch_interval,
            cfg.switch_threshold,
        );
        let mut pending_kind: Option<StepKind> = None;
        let mut steps: Vec<SuperstepMetrics> = Vec::new();
        let mut switches: Vec<(u64, Mode, Mode)> = Vec::new();
        let max_steps = program
            .max_supersteps()
            .unwrap_or(u64::MAX)
            .min(cfg.max_supersteps);

        // Baseline checkpoint: any policy but `Never` takes one right
        // after loading so even a superstep-1 failure has a cut to roll
        // back to. In durable mode (a barrier sink is installed) every
        // checkpoint is followed by a write-ahead commit of the master's
        // own state; the previous cut is kept until the *next* cut's
        // commit lands (retention 2), so the log never points at pruned
        // worker files no matter where a crash falls.
        let mut last_checkpoint: Option<u64> = None;
        let mut prev_checkpoint: Option<u64> = None;
        let mut master_snapshot: Option<MasterSnapshot> = None;
        let mut last_ckpt_worker_bytes = 0u64;
        let mut accum_step_secs = 0.0f64;
        let mut cum_logical = load.io.total_logical_bytes();
        // Fabric epoch: bumped on every recovery so ARQ frames still in
        // flight from before a failure are recognizably stale.
        let mut epoch = 0u64;
        let mut superstep = 0u64;
        if let Some(st) = resume_state {
            assert_eq!(
                st.workers as usize, t,
                "resume state was captured for a different worker count"
            );
            let s0 = st.superstep;
            // Replace the trace rings wholesale with the committed
            // contents: erases the re-load's duplicate events and
            // restores every track's clock to the cut.
            if let Some(s) = &sink {
                let states = st
                    .trace
                    .as_ref()
                    .expect("traced job resumed from an untraced state");
                s.restore_states(states);
            }
            cur = st.cur;
            switcher = st.switcher;
            pending_kind = st.pending_kind;
            steps = st.steps;
            switches = st.switches;
            recovery = st.recovery;
            recoveries_used = st.recoveries_used;
            cum_logical = st.cum_logical;
            accum_step_secs = st.accum_step_secs;
            epoch = st.epoch;
            audit_seen = st.audit_seen as usize;
            last_checkpoint = Some(s0);
            prev_checkpoint = st.prev_checkpoint;
            last_ckpt_worker_bytes = st.last_ckpt_worker_bytes;
            mtbf = st.mtbf;
            // The master kill that necessitated this resume is one
            // observed failure for the fault-aware spacing.
            mtbf.observe();
            master_snapshot = Some(MasterSnapshot {
                switcher: switcher.clone(),
                cur,
                pending_kind,
                steps_len: steps.len(),
                switches_len: switches.len(),
            });
            for tx in &cmd_txs {
                tx.send(Cmd::Rollback {
                    superstep: s0,
                    epoch,
                })
                .expect("worker gone");
            }
            let mut rolled = vec![false; t];
            for _ in 0..t {
                match rep_rx.recv().expect("workers hung up during resume") {
                    WorkerMsg::RolledBack(i) => {
                        assert!(!rolled[i], "duplicate resume ack from worker {i}");
                        rolled[i] = true;
                    }
                    WorkerMsg::Failed { index, error, .. } => {
                        return Err(JobError::WorkerFailed {
                            worker: index,
                            superstep: s0,
                            error,
                        })
                    }
                    _ => unreachable!("unexpected message during resume"),
                }
            }
            if let Some(p) = &pacer {
                p.release(st.pending_release_secs);
            }
            superstep = s0;
        } else {
            if cfg.checkpoint != CheckpointPolicy::Never {
                last_ckpt_worker_bytes =
                    checkpoint_all(&cmd_txs, &rep_rx, &vfss, &mut recovery, 0, None)?;
                if let Some(s) = &sink {
                    s.master().span(
                        "checkpoint",
                        secs_to_us(cfg.profile.seq_write_secs(last_ckpt_worker_bytes)),
                        vec![
                            ("superstep", 0u64.into()),
                            ("max_worker_bytes", last_ckpt_worker_bytes.into()),
                        ],
                    );
                }
                last_checkpoint = Some(0);
                master_snapshot = Some(MasterSnapshot {
                    switcher: switcher.clone(),
                    cur,
                    pending_kind,
                    steps_len: 0,
                    switches_len: 0,
                });
                if let Some(bs) = &cfg.barrier_sink {
                    let state = MasterState {
                        superstep: 0,
                        prev_checkpoint: None,
                        last_ckpt_worker_bytes,
                        epoch,
                        workers: t as u32,
                        cur,
                        pending_kind,
                        recoveries_used,
                        cum_logical,
                        accum_step_secs,
                        // The load grant is still held at this cut; a
                        // resumed incarnation owes its release.
                        pending_release_secs: load_modeled_secs,
                        audit_seen: audit_seen as u64,
                        switcher: switcher.clone(),
                        steps: steps.clone(),
                        switches: switches.clone(),
                        recovery: recovery.clone(),
                        mtbf,
                        trace: sink.as_ref().map(|s| s.export_states()),
                    }
                    .encode();
                    if master_killed(MasterKillPoint::MidBarrier(0)) {
                        return Err(JobError::Halted {
                            point: MasterKillPoint::MidBarrier(0),
                        });
                    }
                    bs.commit(0, &state)?;
                    if master_killed(MasterKillPoint::BetweenGrants(0)) {
                        return Err(JobError::Halted {
                            point: MasterKillPoint::BetweenGrants(0),
                        });
                    }
                }
            }
            if let Some(p) = &pacer {
                p.release(load_modeled_secs);
            }
            if let Some(ps) = &cfg.progress {
                ps.loaded(load_modeled_secs);
            }
            // Per-job budget enforcement: cumulative logical bytes (the
            // device-independent measure, so codecs don't mask overuse)
            // and the per-superstep summed memory high-water mark.
            if let Some(b) = cfg.logical_io_budget {
                if cum_logical > b {
                    return Err(JobError::BudgetExceeded {
                        superstep: 0,
                        resource: "logical_io",
                        used: cum_logical,
                        budget: b,
                    });
                }
            }
        }

        let mut net_base = net_stats.snapshot();
        while superstep < max_steps {
            superstep += 1;
            if let Some(p) = &pacer {
                p.acquire();
            }
            let kind = match cfg.mode {
                Mode::Push => StepKind::Push,
                Mode::PushM => StepKind::PushM,
                Mode::Pull => StepKind::Pull,
                Mode::BPull => StepKind::BPull,
                Mode::Hybrid => pending_kind.take().unwrap_or(match cur {
                    Mode::Push => StepKind::Push,
                    Mode::BPull => StepKind::BPull,
                    _ => unreachable!("hybrid only alternates push and b-pull"),
                }),
                Mode::Async => pending_kind.take().unwrap_or(match cur {
                    Mode::Push => StepKind::Push,
                    Mode::BPull => StepKind::BPull,
                    Mode::Async => StepKind::Async,
                    _ => unreachable!("async alternates push, b-pull and async"),
                }),
            };
            let t_step = Instant::now();
            let base_us = sink.as_ref().map(|s| s.master().clock_us()).unwrap_or(0);
            for tx in &cmd_txs {
                tx.send(Cmd::Step {
                    kind,
                    superstep,
                    base_us,
                })
                .expect("worker gone");
            }
            // Collect exactly one terminal response per worker. On the
            // first failure, broadcast an abort so peers blocked on the
            // dead worker's packets unwind instead of deadlocking.
            let mut reports: Vec<StepReport> = vec![StepReport::default(); t];
            let mut failures: Vec<(usize, String, Option<Box<Endpoint>>)> = Vec::new();
            let mut responded = vec![false; t];
            let mut abort_sent = false;
            for _ in 0..t {
                match rep_rx.recv().expect("workers hung up mid-superstep") {
                    WorkerMsg::Step(i, r) => {
                        assert!(!responded[i], "duplicate step report from worker {i}");
                        responded[i] = true;
                        reports[i] = *r;
                    }
                    WorkerMsg::Aborted(i) => {
                        assert!(!responded[i], "duplicate abort ack from worker {i}");
                        responded[i] = true;
                    }
                    WorkerMsg::Failed {
                        index,
                        error,
                        endpoint,
                    } => {
                        if !abort_sent {
                            control.broadcast(Packet::Abort);
                            abort_sent = true;
                        }
                        failures.push((index, error, endpoint));
                    }
                    _ => unreachable!("unexpected message during superstep"),
                }
            }

            if !failures.is_empty() {
                for (i, e, _) in &failures {
                    recovery.failures.push(FailureEvent {
                        superstep,
                        worker: *i,
                        error: e.clone(),
                    });
                    mtbf.observe();
                }
                let ck = match last_checkpoint {
                    Some(ck) if cfg.checkpoint != CheckpointPolicy::Never => ck,
                    _ => {
                        let (w, e, _) = failures.into_iter().next().unwrap();
                        return Err(JobError::WorkerFailed {
                            worker: w,
                            superstep,
                            error: e,
                        });
                    }
                };
                epoch += 1;

                // Confined recovery (Pregel-style): a *single* death with
                // message logging on, valid log segments at every
                // survivor, a known step kind for every replayed
                // superstep, and a mode whose receive-side state is
                // undoable. Anything else falls back to global rollback.
                let confined = cfg.message_logging
                    && failures.len() == 1
                    && !matches!(cfg.mode, Mode::Pull | Mode::PushM | Mode::Async)
                    && failures[0].2.is_some()
                    && recoveries_used < cfg.max_recoveries
                    && ((ck + 1)..superstep).all(|s| steps.iter().any(|m| m.superstep == s))
                    && confined_logs_ok(&vfss, failures[0].0, ck, superstep);
                if confined {
                    let (fi, _error, endpoint) = failures.into_iter().next().unwrap();
                    let fail_here = |msg: WorkerMsg<P::Value>| match msg {
                        WorkerMsg::Failed { index, error, .. } => Err(JobError::WorkerFailed {
                            worker: index,
                            superstep,
                            error,
                        }),
                        _ => unreachable!("unexpected message during confined recovery"),
                    };
                    recoveries_used += 1;
                    let (tx, rx) = channel::<Cmd>();
                    cmd_txs[fi] = tx;
                    spawn_worker(fi, *endpoint.unwrap(), rx);
                    match rep_rx.recv().expect("respawned worker hung up") {
                        WorkerMsg::Loaded(i, _) => debug_assert_eq!(i, fi),
                        other => return fail_here(other),
                    }
                    // Only the respawned worker reloads the checkpoint.
                    cmd_txs[fi]
                        .send(Cmd::Rollback {
                            superstep: ck,
                            epoch,
                        })
                        .expect("worker gone");
                    match rep_rx.recv().expect("worker hung up during rollback") {
                        WorkerMsg::RolledBack(i) => debug_assert_eq!(i, fi),
                        other => return fail_here(other),
                    }
                    // Survivors revert exactly the failed superstep from
                    // their in-memory pre-images — no checkpoint I/O.
                    for (i, tx) in cmd_txs.iter().enumerate() {
                        if i != fi {
                            tx.send(Cmd::UndoStep { epoch }).expect("worker gone");
                        }
                    }
                    for _ in 0..t - 1 {
                        match rep_rx.recv().expect("workers hung up during undo") {
                            WorkerMsg::Undone(i) => debug_assert_ne!(i, fi),
                            other => return fail_here(other),
                        }
                    }
                    // Replay ck+1..t-1 on the respawned worker: survivors
                    // re-serve their logged packets (never re-executing),
                    // the dead worker re-computes with sends suppressed.
                    for s in (ck + 1)..superstep {
                        let kind_s = steps
                            .iter()
                            .find(|m| m.superstep == s)
                            .expect("validated above")
                            .kind;
                        for (i, tx) in cmd_txs.iter().enumerate() {
                            if i != fi {
                                tx.send(Cmd::ReplayServe {
                                    superstep: s,
                                    target: fi,
                                })
                                .expect("worker gone");
                            }
                        }
                        for _ in 0..t - 1 {
                            match rep_rx.recv().expect("workers hung up during replay") {
                                WorkerMsg::Served(i) => debug_assert_ne!(i, fi),
                                other => return fail_here(other),
                            }
                        }
                        cmd_txs[fi]
                            .send(Cmd::ReplayStep {
                                kind: kind_s,
                                superstep: s,
                            })
                            .expect("worker gone");
                        match rep_rx.recv().expect("worker hung up during replay") {
                            WorkerMsg::Replayed(i) => debug_assert_eq!(i, fi),
                            other => return fail_here(other),
                        }
                    }
                    // The master keeps its cursor: completed supersteps
                    // stay aggregated, the switcher is untouched, and the
                    // failed superstep re-runs under the same kind.
                    if cfg.mode == Mode::Hybrid {
                        pending_kind = Some(kind);
                    }
                    recovery.confined_recoveries += 1;
                    recovery.checkpoint_restores += 1;
                    recovery.replayed_supersteps += (superstep - 1).saturating_sub(ck);
                    recovery.recomputed_supersteps += 1;
                    net_base = net_stats.snapshot();
                    if let Some(p) = &net_plan {
                        faults_base = fired(p);
                    }
                    if let Some(s) = &sink {
                        s.master().instant(
                            "recovery.confined",
                            vec![
                                ("failed_superstep", superstep.into()),
                                ("worker", (fi as u64).into()),
                                ("checkpoint", ck.into()),
                                ("replayed", (superstep - 1).saturating_sub(ck).into()),
                            ],
                        );
                    }
                    if let Some(p) = &pacer {
                        p.release(0.0);
                    }
                    superstep -= 1;
                    continue;
                }

                // Global rollback: respawn every failed worker onto its
                // original endpoint and VFS; a lost endpoint or an
                // exhausted budget is fatal.
                let mut respawned = 0usize;
                for (i, error, endpoint) in failures {
                    let fatal_budget = recoveries_used >= cfg.max_recoveries;
                    match endpoint {
                        Some(ep) if !fatal_budget => {
                            recoveries_used += 1;
                            let (tx, rx) = channel::<Cmd>();
                            cmd_txs[i] = tx;
                            spawn_worker(i, *ep, rx);
                            respawned += 1;
                        }
                        _ => {
                            return Err(JobError::WorkerFailed {
                                worker: i,
                                superstep,
                                error,
                            })
                        }
                    }
                }
                for _ in 0..respawned {
                    match rep_rx.recv().expect("respawned worker hung up") {
                        WorkerMsg::Loaded(..) => {}
                        WorkerMsg::Failed { index, error, .. } => {
                            return Err(JobError::WorkerFailed {
                                worker: index,
                                superstep,
                                error,
                            })
                        }
                        _ => unreachable!("unexpected message during respawn"),
                    }
                }
                // Roll every worker (survivors and respawns alike) back
                // to the checkpointed cut. The rollback handler resets
                // the endpoint to the new epoch — clearing stale packets
                // (including the abort we broadcast) *and* un-acked ARQ
                // frames that would otherwise retransmit into the
                // re-execution.
                for tx in &cmd_txs {
                    tx.send(Cmd::Rollback {
                        superstep: ck,
                        epoch,
                    })
                    .expect("worker gone");
                }
                let mut rolled = vec![false; t];
                for _ in 0..t {
                    match rep_rx.recv().expect("workers hung up during rollback") {
                        WorkerMsg::RolledBack(i) => {
                            assert!(!rolled[i], "duplicate rollback ack from worker {i}");
                            rolled[i] = true;
                        }
                        WorkerMsg::Failed { index, error, .. } => {
                            return Err(JobError::WorkerFailed {
                                worker: index,
                                superstep,
                                error,
                            })
                        }
                        _ => unreachable!("unexpected message during rollback"),
                    }
                }
                // Rewind the master to the same cut.
                let snap = master_snapshot
                    .as_ref()
                    .expect("a checkpoint always has a master snapshot");
                switcher = snap.switcher.clone();
                cur = snap.cur;
                pending_kind = snap.pending_kind;
                steps.truncate(snap.steps_len);
                switches.truncate(snap.switches_len);
                recovery.rollbacks += 1;
                recovery.checkpoint_restores += t as u64;
                recovery.recomputed_supersteps += superstep - ck;
                accum_step_secs = 0.0;
                net_base = net_stats.snapshot();
                if let Some(p) = &net_plan {
                    faults_base = fired(p);
                }
                if let Some(s) = &sink {
                    s.master().instant(
                        "recovery.rollback",
                        vec![
                            ("failed_superstep", superstep.into()),
                            ("checkpoint", ck.into()),
                            ("restores", (t as u64).into()),
                        ],
                    );
                    // The switcher rewound to the cut; audit records past
                    // it will be regenerated (and re-emitted) as the
                    // supersteps re-execute.
                    audit_seen = audit_seen.min(switcher.audit().len());
                }
                if let Some(p) = &pacer {
                    p.release(0.0);
                }
                superstep = ck;
                continue;
            }

            let wall = t_step.elapsed().as_secs_f64();
            let net_now = net_stats.snapshot();
            let net_delta = net_now.delta(&net_base);
            net_base = net_now;
            recovery.msg_log_bytes += reports.iter().map(|r| r.msg_log_bytes).sum::<u64>();

            let ctx = AggCtx {
                cfg: &cfg,
                b_total,
                msg_bytes,
                combinable,
            };
            let (metrics, q_inputs) = aggregate(
                superstep,
                kind,
                &reports,
                &net_delta,
                &ctx,
                &mut switcher,
                wall,
            );
            let pending = metrics.pending_messages;
            let responders = metrics.responders;
            let step_secs = metrics.modeled_secs;
            let step_max_residual = metrics.max_residual;
            // The async extension term's inputs: the duplicated-compute
            // side is exactly what the pseudo-rounds did beyond the first
            // sweep, the savings side is what a strict replacement
            // superstep would have streamed.
            let asy_inputs = AsyncCostInputs {
                extra_rounds: metrics.asy.pseudo_rounds.saturating_sub(1),
                value_io_bytes: metrics.sem.value_update_bytes,
                interior_msg_bytes: metrics.asy.interior_msg_bytes,
                dup_updates: metrics.asy.interior_updates,
                dup_messages: metrics.asy.interior_messages,
                cpu_us_per_vertex: cfg.cpu_us_per_vertex,
                cpu_us_per_message: cfg.cpu_us_per_message,
            };
            // Physical/logical ratio of this superstep's classified I/O,
            // recorded alongside every Q_t audit entry (1.0 with no codec).
            let step_io_ratio = {
                let logical = metrics.io.total_logical_bytes();
                if logical == 0 {
                    1.0
                } else {
                    metrics.io.total_bytes() as f64 / logical as f64
                }
            };
            if let Some(s) = &sink {
                let m = s.master();
                let dur = secs_to_us(step_secs);
                let end_us = m.clock_us() + dur;
                m.span(
                    kind.label(),
                    dur,
                    vec![
                        ("superstep", superstep.into()),
                        ("q_metric", metrics.q_metric.into()),
                        ("updated", metrics.updated.into()),
                        ("messages", metrics.messages_produced.into()),
                        ("io_bytes", metrics.io.total_bytes().into()),
                    ],
                );
                m.instant("barrier", vec![("superstep", superstep.into())]);
                let nsh = s.net();
                nsh.counter_at(
                    end_us,
                    "net.bytes",
                    vec![
                        ("remote", metrics.net_out_bytes.into()),
                        ("local", metrics.net_local_bytes.into()),
                    ],
                );
                if let Some(p) = &net_plan {
                    let now = fired(p);
                    let d = (
                        now.0 - faults_base.0,
                        now.1 - faults_base.1,
                        now.2 - faults_base.2,
                    );
                    faults_base = now;
                    if d.0 + d.1 + d.2 > 0 {
                        nsh.instant_at(
                            end_us,
                            "arq.faults",
                            vec![
                                ("superstep", superstep.into()),
                                ("drops", d.0.into()),
                                ("duplicates", d.1.into()),
                                ("delays", d.2.into()),
                            ],
                        );
                    }
                }
            } else if let Some(p) = &net_plan {
                faults_base = fired(p);
            }
            let step_logical = metrics.io.total_logical_bytes();
            let step_memory = metrics.memory_bytes;
            steps.push(metrics);
            mtbf.advance(step_secs);
            if let Some(p) = &pacer {
                p.release(step_secs);
            }
            if let Some(ps) = &cfg.progress {
                ps.superstep(superstep, kind.mode(), step_secs);
            }
            cum_logical += step_logical;
            if let Some(b) = cfg.logical_io_budget {
                if cum_logical > b {
                    return Err(JobError::BudgetExceeded {
                        superstep,
                        resource: "logical_io",
                        used: cum_logical,
                        budget: b,
                    });
                }
            }
            if let Some(b) = cfg.memory_budget {
                if step_memory > b {
                    return Err(JobError::BudgetExceeded {
                        superstep,
                        resource: "memory",
                        used: step_memory,
                        budget: b,
                    });
                }
            }

            if pending == 0 && responders == 0 {
                break;
            }
            // Tolerance-based termination: once the largest per-vertex
            // residual of a superstep falls to `eps`, further supersteps
            // cannot move the result past the program's own tolerance.
            // Guarded past superstep 1 so an initially-quiet frontier
            // does not end the job before any message flowed.
            if let Some(eps) = program.tolerance() {
                if superstep >= 2 && step_max_residual <= eps {
                    break;
                }
            }
            if matches!(cfg.mode, Mode::Hybrid | Mode::Async) && superstep + 1 < max_steps {
                let decision = if cfg.mode == Mode::Async {
                    switcher.decide_async(
                        superstep,
                        &cfg.profile,
                        &q_inputs,
                        &asy_inputs,
                        step_secs,
                        step_io_ratio,
                    )
                } else {
                    switcher.decide(superstep, &cfg.profile, &q_inputs, step_secs, step_io_ratio)
                };
                // Break `step_io_ratio` out by access class for jobs
                // running with a codec: the audit then shows *which* I/O
                // tier the codec compressed (adjacency extents are
                // sequential reads; value point reads stay 1.0).
                if !cfg.codec.is_none() {
                    let tier = |phys: u64, logi: u64| {
                        if logi == 0 {
                            1.0
                        } else {
                            phys as f64 / logi as f64
                        }
                    };
                    let io = &steps.last().expect("step just pushed").io;
                    switcher.annotate_tiers(QtTiers {
                        seq_read: tier(io.seq_read_bytes, io.seq_read_logical_bytes),
                        seq_write: tier(io.seq_write_bytes, io.seq_write_logical_bytes),
                        rand_read: tier(io.rand_read_bytes, io.rand_read_logical_bytes),
                        rand_write: tier(io.rand_write_bytes, io.rand_write_logical_bytes),
                    });
                }
                if let Some(new_mode) = decision {
                    let from = cur;
                    // The transition step that reconciles the two legs'
                    // message state. push→async needs none: push already
                    // delivered to every destination, async's next sweep
                    // just drains the inbox.
                    pending_kind = match (from, new_mode) {
                        (Mode::BPull, Mode::Push | Mode::Async) => Some(StepKind::BPullThenPush),
                        (Mode::Push | Mode::Async, Mode::BPull) => Some(StepKind::PushNoSend),
                        (Mode::Async, Mode::Push) => Some(StepKind::AsyncThenPush),
                        (Mode::Push, Mode::Async) => None,
                        _ => unreachable!("switcher only moves between push, b-pull and async"),
                    };
                    cur = new_mode;
                    switches.push((superstep + 1, from, new_mode));
                    if let Some(s) = &sink {
                        s.control().instant_at(
                            s.master().clock_us(),
                            "switch",
                            vec![
                                ("at_superstep", (superstep + 1).into()),
                                ("from", from.label().into()),
                                ("to", new_mode.label().into()),
                            ],
                        );
                    }
                }
            }
            // Every Switcher evaluation (including holds and too-early
            // refusals) lands on the control track as one audit instant.
            if let Some(s) = &sink {
                let audits = switcher.audit();
                if audit_seen < audits.len() {
                    let ts = s.master().clock_us();
                    let c = s.control();
                    for a in &audits[audit_seen..] {
                        c.instant_at(
                            ts,
                            "qt",
                            vec![
                                ("superstep", a.superstep.into()),
                                ("q", a.q.into()),
                                ("verdict", a.verdict.label().into()),
                                ("mode_before", a.mode_before.into()),
                                ("mode_after", a.mode_after.into()),
                            ],
                        );
                    }
                    audit_seen = audits.len();
                }
            }

            // Checkpoint decision at the barrier. `EveryK` is the classic
            // fixed interval; `Adaptive` is a Young-style rule driven by
            // the deterministic cost model: checkpoint once the modeled
            // compute time since the last cut outweighs `factor` times
            // the modeled cost of writing one.
            let take = match cfg.checkpoint {
                CheckpointPolicy::Never => false,
                CheckpointPolicy::EveryK(k) => superstep.is_multiple_of(k.max(1)),
                CheckpointPolicy::Adaptive => {
                    accum_step_secs += step_secs;
                    let write_secs = cfg.profile.seq_write_secs(last_ckpt_worker_bytes.max(1));
                    // Fault-aware (opt-in): observed kill rates tighten
                    // the spacing via Young's approximation; without
                    // evidence or with the flag off this is exactly the
                    // plain `factor × write_secs` rule.
                    accum_step_secs
                        >= adaptive_spacing_secs(
                            cfg.adaptive_checkpoint_factor,
                            write_secs,
                            mtbf.mtbf(),
                            cfg.fault_aware_checkpoint,
                        )
                }
            };
            if take {
                // Durable mode prunes with retention 2: the cut *before*
                // the previous one goes, because the previous cut must
                // stay on disk until this cut's WAL record commits — a
                // crash between the worker files and the commit resumes
                // from the previous cut.
                let durable = cfg.barrier_sink.is_some();
                let prune = if durable {
                    prev_checkpoint
                } else {
                    last_checkpoint
                };
                last_ckpt_worker_bytes =
                    checkpoint_all(&cmd_txs, &rep_rx, &vfss, &mut recovery, superstep, prune)?;
                if let Some(s) = &sink {
                    s.master().span(
                        "checkpoint",
                        secs_to_us(cfg.profile.seq_write_secs(last_ckpt_worker_bytes)),
                        vec![
                            ("superstep", superstep.into()),
                            ("max_worker_bytes", last_ckpt_worker_bytes.into()),
                        ],
                    );
                }
                prev_checkpoint = last_checkpoint;
                last_checkpoint = Some(superstep);
                master_snapshot = Some(MasterSnapshot {
                    switcher: switcher.clone(),
                    cur,
                    pending_kind,
                    steps_len: steps.len(),
                    switches_len: switches.len(),
                });
                accum_step_secs = 0.0;
                if let Some(bs) = &cfg.barrier_sink {
                    // Write-ahead ordering: worker checkpoint files are
                    // durable *before* the master's commit record. The
                    // seeded kills bracket the commit — `MidBarrier`
                    // models dying with the files written but the record
                    // missing, `BetweenGrants` right after the record.
                    let state = MasterState {
                        superstep,
                        prev_checkpoint,
                        last_ckpt_worker_bytes,
                        epoch,
                        workers: t as u32,
                        cur,
                        pending_kind,
                        recoveries_used,
                        cum_logical,
                        accum_step_secs,
                        pending_release_secs: 0.0,
                        audit_seen: audit_seen as u64,
                        switcher: switcher.clone(),
                        steps: steps.clone(),
                        switches: switches.clone(),
                        recovery: recovery.clone(),
                        mtbf,
                        trace: sink.as_ref().map(|s| s.export_states()),
                    }
                    .encode();
                    if master_killed(MasterKillPoint::MidBarrier(superstep)) {
                        return Err(JobError::Halted {
                            point: MasterKillPoint::MidBarrier(superstep),
                        });
                    }
                    bs.commit(superstep, &state)?;
                    if master_killed(MasterKillPoint::BetweenGrants(superstep)) {
                        return Err(JobError::Halted {
                            point: MasterKillPoint::BetweenGrants(superstep),
                        });
                    }
                }
            } else if cfg.fault_plan.is_some() {
                // Barriers without a checkpoint can still be kill points:
                // the restarted job then resumes from the last committed
                // cut further back.
                for point in [
                    MasterKillPoint::MidBarrier(superstep),
                    MasterKillPoint::BetweenGrants(superstep),
                ] {
                    if master_killed(point) {
                        return Err(JobError::Halted { point });
                    }
                }
            }
        }

        // ---- Collect ----------------------------------------------------
        if let Some(p) = &pacer {
            p.acquire();
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Collect).expect("worker gone");
        }
        let mut values: Vec<Option<Vec<P::Value>>> = vec![None; t];
        let mut bases: Vec<u32> = vec![0; t];
        for _ in 0..t {
            match rep_rx.recv().expect("workers hung up during collect") {
                WorkerMsg::Values(i, base, vals) => {
                    bases[i] = base;
                    values[i] = Some(vals);
                }
                WorkerMsg::Failed { index, error, .. } => {
                    return Err(JobError::WorkerFailed {
                        worker: index,
                        superstep,
                        error,
                    })
                }
                _ => unreachable!("unexpected message during collect"),
            }
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Exit).ok();
        }
        if let Some(p) = &pacer {
            p.release(0.0);
        }
        let mut all = Vec::with_capacity(n);
        let mut pairs: Vec<(u32, Vec<P::Value>)> = bases
            .into_iter()
            .zip(values.into_iter().map(|v| v.unwrap()))
            .collect();
        pairs.sort_by_key(|(b, _)| *b);
        for (_, vals) in pairs {
            all.extend(vals);
        }
        debug_assert_eq!(all.len(), n);

        recovery.mtbf_secs = mtbf.mtbf().unwrap_or(0.0);
        let ns = net_stats.snapshot();
        let net_overhead = NetOverhead {
            retransmitted_bytes: ns.retransmitted_bytes,
            duplicate_drops: ns.duplicate_drops,
            dropped_frames: ns.dropped_frames,
            delayed_frames: ns.delayed_frames,
            acks_sent: ns.acks_sent,
            replayed_bytes: ns.replayed_bytes,
        };

        Ok(JobResult {
            values: all,
            metrics: JobMetrics {
                load,
                steps,
                switches,
                qt_audit: switcher.audit().to_vec(),
                profile: cfg.profile,
                recovery,
                net_overhead,
            },
        })
    })
}

/// Dispatches one superstep execution by kind.
fn run_step_kind<P: VertexProgram>(
    worker: &mut Worker<P>,
    kind: StepKind,
    superstep: u64,
) -> io::Result<StepReport> {
    match kind {
        StepKind::Push => run_push_step(worker, superstep, true, false),
        StepKind::PushNoSend => run_push_step(worker, superstep, false, false),
        StepKind::PushM => run_push_step(worker, superstep, true, true),
        StepKind::Pull => run_pull_step(worker, superstep),
        StepKind::BPull => run_bpull_step(worker, superstep, false),
        StepKind::BPullThenPush => run_bpull_step(worker, superstep, true),
        StepKind::Async => run_async_step(worker, superstep, false),
        StepKind::AsyncThenPush => run_async_step(worker, superstep, true),
    }
}

fn worker_main<P: VertexProgram>(
    seed: WorkerSeed<'_, P>,
    cmd_rx: Receiver<Cmd>,
    rep_tx: Sender<WorkerMsg<P::Value>>,
) {
    let index = seed.id.index();
    let plan = seed.cfg.fault_plan.clone();
    let injected = |superstep: u64, phase: FaultPhase| -> bool {
        plan.as_ref()
            .is_some_and(|p| p.should_fail(index, superstep, phase))
    };
    // The load-phase hook fires before `Worker::load` consumes the
    // endpoint, so an injected load fault is recoverable; a genuine load
    // error is not (the endpoint went down with the half-built worker).
    if injected(0, FaultPhase::Load) {
        rep_tx
            .send(WorkerMsg::Failed {
                index,
                error: "injected fault: killed while loading".into(),
                endpoint: Some(Box::new(seed.ep)),
            })
            .ok();
        return;
    }
    let (mut worker, load) = match Worker::load(seed) {
        Ok(x) => x,
        Err(e) => {
            rep_tx
                .send(WorkerMsg::Failed {
                    index,
                    error: e.to_string(),
                    endpoint: None,
                })
                .ok();
            return;
        }
    };
    rep_tx
        .send(WorkerMsg::Loaded(index, Box::new(load)))
        .expect("master gone");
    // Propagates an error as a worker death, handing the endpoint back.
    macro_rules! fail {
        ($err:expr) => {{
            let ep = worker.ep;
            rep_tx
                .send(WorkerMsg::Failed {
                    index,
                    error: $err.to_string(),
                    endpoint: Some(Box::new(ep)),
                })
                .ok();
            return;
        }};
    }
    loop {
        // Idle workers must keep servicing the endpoint: the ARQ layer
        // retransmits from the *sender*, so a worker parked between
        // supersteps would otherwise never re-send a dropped frame a
        // peer is still blocked on.
        let cmd = match cmd_rx.recv_timeout(Duration::from_millis(2)) {
            Ok(cmd) => cmd,
            Err(RecvTimeoutError::Timeout) => {
                worker.ep.service();
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match cmd {
            Cmd::Step {
                kind,
                superstep,
                base_us,
            } => {
                worker.step_base_us = base_us;
                if injected(superstep, FaultPhase::Compute) {
                    fail!(format!(
                        "injected fault: killed before compute of superstep {superstep}"
                    ));
                }
                let logging = worker.cfg.message_logging;
                if logging {
                    worker.ep.start_capture();
                    if let Err(e) = worker.begin_undo_capture() {
                        fail!(e);
                    }
                }
                match run_step_kind(&mut worker, kind, superstep) {
                    Ok(mut rep) => {
                        if logging {
                            let captured = worker.ep.take_capture();
                            match worker.commit_msg_log(superstep, &captured) {
                                Ok(bytes) => rep.msg_log_bytes = bytes,
                                Err(e) => fail!(e),
                            }
                        }
                        if injected(superstep, FaultPhase::Barrier) {
                            fail!(format!(
                                "injected fault: killed at barrier of superstep {superstep}"
                            ));
                        }
                        rep_tx
                            .send(WorkerMsg::Step(index, Box::new(rep)))
                            .expect("master gone");
                    }
                    Err(e) if crate::modes::is_abort(&e) => {
                        // A peer failed; the master broadcast an abort.
                        // Unwind this superstep (keeping the undo capture
                        // for a possible confined recovery) and await the
                        // master's next order.
                        if logging {
                            let _ = worker.ep.take_capture();
                        }
                        rep_tx.send(WorkerMsg::Aborted(index)).expect("master gone");
                    }
                    Err(e) => fail!(e),
                }
            }
            Cmd::Checkpoint { superstep, prune } => {
                let res = worker.write_checkpoint(superstep).and_then(|bytes| {
                    // Pruning is idempotent: a restarted incarnation may
                    // re-prune a cut its predecessor already removed.
                    if let Some(p) = prune {
                        if hybridgraph_storage::checkpoint::has_checkpoint(worker.vfs.as_ref(), p) {
                            hybridgraph_storage::checkpoint::remove_checkpoint(
                                worker.vfs.as_ref(),
                                p,
                            )?;
                        }
                    }
                    if worker.cfg.message_logging {
                        // Replays start from this cut; earlier log
                        // segments can never be needed again.
                        for s in (prune.unwrap_or(0) + 1)..=superstep {
                            if msg_log::has_log_segment(worker.vfs.as_ref(), s) {
                                msg_log::remove_log_segment(worker.vfs.as_ref(), s)?;
                            }
                        }
                    }
                    Ok(bytes)
                });
                match res {
                    Ok(bytes) => rep_tx
                        .send(WorkerMsg::Checkpointed(index, bytes))
                        .expect("master gone"),
                    Err(e) => fail!(e),
                }
            }
            Cmd::Rollback { superstep, epoch } => {
                // Stale packets from the aborted superstep (message
                // batches, end-of-step markers, the abort itself) and
                // un-acked ARQ frames must not leak into the
                // re-execution: the epoch reset invalidates them all.
                worker.ep.reset(epoch);
                worker.undo = None;
                worker.replay = false;
                match worker.restore_checkpoint(superstep) {
                    Ok(()) => rep_tx
                        .send(WorkerMsg::RolledBack(index))
                        .expect("master gone"),
                    Err(e) => fail!(e),
                }
            }
            Cmd::UndoStep { epoch } => {
                worker.ep.reset(epoch);
                match worker.apply_undo() {
                    Ok(true) => rep_tx.send(WorkerMsg::Undone(index)).expect("master gone"),
                    Ok(false) => fail!("confined undo ordered but no capture exists"),
                    Err(e) => fail!(e),
                }
            }
            Cmd::ReplayServe { superstep, target } => {
                let res = (|| -> io::Result<()> {
                    let mut r = MsgLogReader::open(worker.vfs.as_ref(), superstep)?;
                    let to = WorkerId::from(target);
                    while let Some((dest, blob)) = r.next_entry()? {
                        if dest as usize != target {
                            continue;
                        }
                        let (packet, _) = Packet::decode(&blob).ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("corrupt message-log entry in superstep {superstep}"),
                            )
                        })?;
                        worker.ep.send_replay(to, packet);
                    }
                    Ok(())
                })();
                match res {
                    Ok(()) => rep_tx.send(WorkerMsg::Served(index)).expect("master gone"),
                    Err(e) => fail!(e),
                }
            }
            Cmd::ReplayStep { kind, superstep } => {
                // Re-execute with remote sends suppressed: every peer
                // already processed the originals, and this worker's own
                // loopback traffic still flows so it re-serves itself.
                worker.replay = true;
                worker.ep.set_replay(true);
                let res = run_step_kind(&mut worker, kind, superstep);
                worker.ep.set_replay(false);
                worker.replay = false;
                match res {
                    Ok(_rep) => rep_tx
                        .send(WorkerMsg::Replayed(index))
                        .expect("master gone"),
                    Err(e) => fail!(e),
                }
            }
            Cmd::Collect => match worker.collect_values() {
                Ok(vals) => rep_tx
                    .send(WorkerMsg::Values(index, worker.range.start, vals))
                    .expect("master gone"),
                Err(e) => fail!(e),
            },
            Cmd::Exit => return,
        }
    }
}

/// Job-constant inputs the per-superstep aggregation needs.
struct AggCtx<'a> {
    /// The job configuration.
    cfg: &'a JobConfig,
    /// Cluster-wide message-buffer capacity (the paper's `B`).
    b_total: u64,
    /// Encoded bytes per message (id + payload).
    msg_bytes: u64,
    /// True if messages combine under this configuration.
    combinable: bool,
}

/// Builds the master-side superstep metrics from worker reports.
fn aggregate(
    superstep: u64,
    kind: StepKind,
    reports: &[StepReport],
    net: &NetSnapshot,
    ctx: &AggCtx<'_>,
    switcher: &mut Switcher,
    wall: f64,
) -> (SuperstepMetrics, CostInputs) {
    let AggCtx {
        cfg,
        b_total,
        msg_bytes,
        combinable,
    } = *ctx;
    let sem = reports
        .iter()
        .fold(crate::metrics::SemanticBytes::default(), |acc, r| {
            acc.plus(&r.sem)
        });
    let io = reports
        .iter()
        .fold(IoSnapshot::default(), |acc, r| acc.plus(&r.io));
    let sum = |f: fn(&StepReport) -> u64| reports.iter().map(f).sum::<u64>();
    let produced = sum(|r| r.messages_produced);
    let delivered_raw = sum(|r| r.delivered_raw);
    let delivered_distinct = sum(|r| r.delivered_distinct);

    // Modeled time: max over workers of io + net + cpu.
    let mut modeled = 0.0f64;
    let mut modeled_io = 0.0f64;
    let mut modeled_net = 0.0f64;
    for (i, r) in reports.iter().enumerate() {
        let io_secs = r.io.modeled_secs(&cfg.profile);
        let net_secs = cfg.profile.net_secs(net.out_bytes[i] + net.in_bytes[i]);
        let cpu_secs = (cfg.cpu_us_per_message
            * (r.messages_produced + r.messages_consumed) as f64
            + cfg.cpu_us_per_vertex * r.updated as f64)
            * 1e-6;
        modeled = modeled.max(io_secs + net_secs + cpu_secs);
        modeled_io = modeled_io.max(io_secs);
        modeled_net = modeled_net.max(net_secs);
    }

    // Push-side quantities: actual when push ran, estimated otherwise.
    // Async supersteps are push-flavoured — the boundary exchange is a
    // real push whose spill and edge traffic were measured.
    let push_ran = matches!(
        kind,
        StepKind::Push | StepKind::PushM | StepKind::Async | StepKind::AsyncThenPush
    );
    let pull_ran = matches!(kind, StepKind::BPull | StepKind::BPullThenPush);
    let mdisk_est = msg_bytes * produced.saturating_sub(b_total);
    let (io_e_push, io_mdisk) = if push_ran {
        (sem.push_edge_bytes, sem.msg_spill_bytes)
    } else {
        (sum(|r| r.next_push_edge_bytes), mdisk_est)
    };
    let (io_e_bpull, io_f, io_vrr) = if pull_ran {
        (
            sem.bpull_edge_bytes,
            sem.fragment_aux_bytes,
            sem.svertex_rand_bytes,
        )
    } else {
        (
            sum(|r| r.next_bpull_edge_bytes),
            sum(|r| r.next_bpull_aux_bytes),
            sum(|r| r.next_bpull_vrr_bytes),
        )
    };

    // M_co: observed in (b-)pull supersteps, estimated in push ones.
    let mco = if pull_ran {
        let saved = net.total_saved_messages();
        switcher.observe_rco(saved, net.total_raw_messages());
        saved
    } else {
        let distinct_est = if delivered_raw > 0 {
            ((delivered_distinct as f64 / delivered_raw as f64) * produced as f64) as u64
        } else {
            produced // unknown: assume no sharing -> M_co estimate 0
        };
        switcher.estimate_mco(produced, distinct_est.min(produced))
    };

    let cio_push_bytes = sem.value_update_bytes + io_e_push + 2 * io_mdisk;
    let cio_bpull_bytes = sem.value_update_bytes + io_e_bpull + io_f + io_vrr;
    let inputs = CostInputs {
        mco,
        bytes_per_saved: if combinable { msg_bytes } else { 4 },
        io_mdisk,
        io_vrr,
        io_e_push,
        io_e_bpull,
        io_f,
    };
    let q = q_metric(&cfg.profile, &inputs);

    // Pseudo-round stats: rounds are a max (workers iterate in lockstep
    // between two barriers), the work counts are sums.
    let asy = reports
        .iter()
        .fold(crate::metrics::AsyncStepStats::default(), |mut acc, r| {
            acc.merge(&r.asy);
            acc
        });

    let metrics = SuperstepMetrics {
        superstep,
        kind,
        io,
        sem,
        net_out_bytes: net.total_remote_bytes(),
        net_local_bytes: net.local_bytes.iter().sum(),
        net_raw_messages: net.total_raw_messages(),
        net_wire_values: net.wire_values_out.iter().sum(),
        net_saved_messages: net.total_saved_messages(),
        net_requests: net.total_requests(),
        updated: sum(|r| r.updated),
        responders: sum(|r| r.responders),
        messages_produced: produced,
        pending_messages: sum(|r| r.pending_messages),
        cio_push_bytes,
        cio_bpull_bytes,
        mco,
        q_metric: q,
        memory_bytes: sum(|r| r.memory_bytes),
        cache_hits: sum(|r| r.cache_hits),
        cache_misses: sum(|r| r.cache_misses),
        cache_evictions: sum(|r| r.cache_evictions),
        modeled_secs: modeled,
        modeled_io_secs: modeled_io,
        modeled_net_secs: modeled_net,
        wall_secs: wall,
        blocking_secs: reports.iter().map(|r| r.blocking_secs).fold(0.0, f64::max),
        asy,
        max_residual: reports.iter().map(|r| r.max_residual).fold(0.0, f64::max),
    };
    (metrics, inputs)
}
