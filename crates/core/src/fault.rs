//! Deterministic fault injection for the simulated BSP cluster.
//!
//! A [`FaultPlan`] is a list of *kill orders*: worker `w` dies at
//! superstep `k` while in a given [`FaultPhase`]. The runner's worker
//! threads consult the plan at fixed, deterministic hook points (before
//! loading, before a superstep's compute, and at the barrier after the
//! superstep's exchange has quiesced), so the same plan against the same
//! job always fails at the same instruction — which is what makes the
//! recovery tests able to demand *bit-identical* post-recovery values.
//!
//! Each fault fires **once** ([`AtomicBool`] swap): after the master
//! respawns the killed worker and rolls the cluster back, the re-executed
//! superstep passes the same hook again and must not re-trigger.
//!
//! Plans are either explicit ([`FaultPlan::kill`]) or generated from a
//! seed ([`FaultPlan::random`]) via the workspace's [`SplitMix64`] stream,
//! so a seed fully determines the failure schedule.

use hybridgraph_graph::rng::SplitMix64;
use hybridgraph_net::NetFaultPlan;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Where in a worker's lifecycle a fault strikes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// While building the on-disk stores (superstep 0).
    Load,
    /// At the start of a superstep's compute, before any message is sent.
    Compute,
    /// At the superstep barrier: compute and exchange finished, report
    /// not yet delivered to the master.
    Barrier,
}

impl FaultPhase {
    /// All phases, in lifecycle order.
    pub const ALL: [FaultPhase; 3] = [FaultPhase::Load, FaultPhase::Compute, FaultPhase::Barrier];
}

/// One kill order.
#[derive(Debug)]
struct Fault {
    worker: usize,
    superstep: u64,
    phase: FaultPhase,
    fired: AtomicBool,
}

/// A deterministic schedule of worker kills.
///
/// Shared (behind an `Arc` in
/// [`JobConfig::fault_plan`](crate::config::JobConfig)) between the
/// master and every worker thread; the fire-once bookkeeping is the only
/// mutable state.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    net: Option<Arc<NetFaultPlan>>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a kill order: `worker` dies at `superstep` in `phase`.
    /// [`FaultPhase::Load`] faults conventionally use superstep 0.
    pub fn kill(mut self, worker: usize, superstep: u64, phase: FaultPhase) -> Self {
        self.faults.push(Fault {
            worker,
            superstep,
            phase,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// A seeded random plan of `count` **distinct** kill orders over
    /// `workers` workers and supersteps `1..=max_superstep`. The same
    /// seed always yields the same schedule ([`SplitMix64`] is the only
    /// entropy source). Duplicate `(worker, superstep, phase)` draws are
    /// rejected and regenerated, so `len() == count` holds and a
    /// duplicated triple can never silently halve the schedule (a
    /// duplicate's second copy could fire during the re-execution after
    /// recovery, producing a seed-dependent *extra* failure).
    pub fn random(seed: u64, workers: usize, max_superstep: u64, count: usize) -> Self {
        assert!(workers > 0 && max_superstep > 0);
        let capacity = workers as u64 * (1 + 2 * max_superstep);
        assert!(
            count as u64 <= capacity,
            "cannot draw {count} distinct faults from a space of {capacity}"
        );
        let mut r = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        let mut seen = std::collections::HashSet::new();
        while plan.faults.len() < count {
            let worker = r.below_u32(workers as u32) as usize;
            let phase = match r.below_u32(3) {
                0 => FaultPhase::Load,
                1 => FaultPhase::Compute,
                _ => FaultPhase::Barrier,
            };
            let superstep = match phase {
                FaultPhase::Load => 0,
                _ => 1 + r.below_u64(max_superstep),
            };
            if seen.insert((worker, superstep, phase)) {
                plan = plan.kill(worker, superstep, phase);
            }
        }
        plan
    }

    /// Attaches a seeded network-fault schedule (drops, duplicates,
    /// delays on the simulated wire) to this plan. The runner installs
    /// it on every fabric endpoint.
    pub fn with_net(mut self, net: Arc<NetFaultPlan>) -> Self {
        self.net = Some(net);
        self
    }

    /// The attached network-fault schedule, if any.
    pub fn net_plan(&self) -> Option<&Arc<NetFaultPlan>> {
        self.net.as_ref()
    }

    /// Number of kill orders in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The schedule as `(worker, superstep, phase)` triples, for
    /// determinism assertions in tests.
    pub fn spec(&self) -> Vec<(usize, u64, FaultPhase)> {
        self.faults
            .iter()
            .map(|f| (f.worker, f.superstep, f.phase))
            .collect()
    }

    /// True if `worker` must die now. Each matching fault fires at most
    /// once; re-execution of the same superstep after recovery passes.
    pub fn should_fail(&self, worker: usize, superstep: u64, phase: FaultPhase) -> bool {
        self.faults.iter().any(|f| {
            f.worker == worker
                && f.superstep == superstep
                && f.phase == phase
                && f.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
        })
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.fired.load(Ordering::Acquire))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_fires_once() {
        let p = FaultPlan::new().kill(2, 5, FaultPhase::Compute);
        assert!(!p.should_fail(1, 5, FaultPhase::Compute));
        assert!(!p.should_fail(2, 4, FaultPhase::Compute));
        assert!(!p.should_fail(2, 5, FaultPhase::Barrier));
        assert!(p.should_fail(2, 5, FaultPhase::Compute));
        // Re-execution after recovery does not re-trigger.
        assert!(!p.should_fail(2, 5, FaultPhase::Compute));
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn multiple_faults_fire_independently() {
        let p = FaultPlan::new()
            .kill(0, 2, FaultPhase::Barrier)
            .kill(1, 2, FaultPhase::Barrier);
        assert!(p.should_fail(0, 2, FaultPhase::Barrier));
        assert!(p.should_fail(1, 2, FaultPhase::Barrier));
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn random_plan_is_seed_deterministic() {
        let a = FaultPlan::random(0xFA11, 4, 20, 5);
        let b = FaultPlan::random(0xFA11, 4, 20, 5);
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.len(), 5);
        let c = FaultPlan::random(0xFA12, 4, 20, 5);
        assert_ne!(a.spec(), c.spec(), "different seed, different schedule");
        for (w, s, ph) in a.spec() {
            assert!(w < 4);
            match ph {
                FaultPhase::Load => assert_eq!(s, 0),
                _ => assert!((1..=20).contains(&s)),
            }
        }
    }

    #[test]
    fn random_plan_has_no_duplicate_triples() {
        // A small space forces collisions in the raw draw stream, so
        // this exercises the reject-and-regenerate path.
        for seed in 0..64u64 {
            let workers = 2;
            let max_ss = 3;
            let count = 8;
            let p = FaultPlan::random(seed, workers, max_ss, count);
            assert_eq!(p.len(), count, "seed {seed}: len must match count");
            let spec = p.spec();
            let distinct: std::collections::HashSet<_> = spec.iter().collect();
            assert_eq!(distinct.len(), spec.len(), "seed {seed}: duplicate triple");
        }
        // Regeneration keeps the schedule seed-stable.
        let a = FaultPlan::random(99, 2, 3, 8);
        let b = FaultPlan::random(99, 2, 3, 8);
        assert_eq!(a.spec(), b.spec());
        // Drawing the entire space is allowed and exact.
        let full = 2 * (1 + 2 * 3);
        let p = FaultPlan::random(7, 2, 3, full);
        assert_eq!(p.len(), full);
    }

    #[test]
    #[should_panic(expected = "distinct faults")]
    fn random_plan_rejects_oversized_count() {
        let _ = FaultPlan::random(1, 1, 1, 4);
    }

    #[test]
    fn net_plan_attachment() {
        use hybridgraph_net::NetFaultPlan;
        let p = FaultPlan::new().with_net(Arc::new(NetFaultPlan::new(3).with_drops(100, 2)));
        assert!(p.net_plan().is_some());
        assert!(FaultPlan::new().net_plan().is_none());
    }

    #[test]
    fn empty_plan_never_fails() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.should_fail(0, 1, FaultPhase::Load));
    }
}
