//! Deterministic fault injection for the simulated BSP cluster.
//!
//! A [`FaultPlan`] is a list of *kill orders*: worker `w` dies at
//! superstep `k` while in a given [`FaultPhase`]. The runner's worker
//! threads consult the plan at fixed, deterministic hook points (before
//! loading, before a superstep's compute, and at the barrier after the
//! superstep's exchange has quiesced), so the same plan against the same
//! job always fails at the same instruction — which is what makes the
//! recovery tests able to demand *bit-identical* post-recovery values.
//!
//! Each fault fires **once** ([`AtomicBool`] swap): after the master
//! respawns the killed worker and rolls the cluster back, the re-executed
//! superstep passes the same hook again and must not re-trigger.
//!
//! Plans are either explicit ([`FaultPlan::kill`]) or generated from a
//! seed ([`FaultPlan::random`]) via the workspace's [`SplitMix64`] stream,
//! so a seed fully determines the failure schedule.

use hybridgraph_graph::rng::SplitMix64;
use hybridgraph_net::NetFaultPlan;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Where in a worker's lifecycle a fault strikes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// While building the on-disk stores (superstep 0).
    Load,
    /// At the start of a superstep's compute, before any message is sent.
    Compute,
    /// At the superstep barrier: compute and exchange finished, report
    /// not yet delivered to the master.
    Barrier,
}

impl FaultPhase {
    /// All phases, in lifecycle order.
    pub const ALL: [FaultPhase; 3] = [FaultPhase::Load, FaultPhase::Compute, FaultPhase::Barrier];
}

/// Where the *master* (the `run_job` control loop itself) is killed by a
/// chaos plan. Unlike worker kills — which the master observes and
/// recovers from in-process — a master kill halts the whole job with
/// [`JobError::Halted`](crate::runner::JobError); recovery happens
/// out-of-process via `GraphService::restore`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MasterKillPoint {
    /// After the workers have loaded their stores, before the first
    /// superstep (nothing durable yet — restart re-runs from scratch).
    Load,
    /// At superstep `k`'s barrier, after worker checkpoints are written
    /// but *before* the master snapshot commits to the service log (the
    /// log still points at the previous barrier).
    MidBarrier(u64),
    /// Right after superstep `k`'s snapshot committed, before the next
    /// scheduler grant is consumed (the log points at `k`).
    BetweenGrants(u64),
}

/// One kill order.
#[derive(Debug)]
struct Fault {
    worker: usize,
    superstep: u64,
    phase: FaultPhase,
    fired: AtomicBool,
}

/// One master kill order.
#[derive(Debug)]
struct MasterKill {
    point: MasterKillPoint,
    fired: AtomicBool,
}

/// A deterministic schedule of worker kills.
///
/// Shared (behind an `Arc` in
/// [`JobConfig::fault_plan`](crate::config::JobConfig)) between the
/// master and every worker thread; the fire-once bookkeeping is the only
/// mutable state.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    master_kills: Vec<MasterKill>,
    net: Option<Arc<NetFaultPlan>>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a kill order: `worker` dies at `superstep` in `phase`.
    /// [`FaultPhase::Load`] faults conventionally use superstep 0.
    pub fn kill(mut self, worker: usize, superstep: u64, phase: FaultPhase) -> Self {
        self.faults.push(Fault {
            worker,
            superstep,
            phase,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// A seeded random plan of `count` **distinct** kill orders over
    /// `workers` workers and supersteps `1..=max_superstep`. The same
    /// seed always yields the same schedule ([`SplitMix64`] is the only
    /// entropy source). Duplicate `(worker, superstep, phase)` draws are
    /// rejected and regenerated, so `len() == count` holds and a
    /// duplicated triple can never silently halve the schedule (a
    /// duplicate's second copy could fire during the re-execution after
    /// recovery, producing a seed-dependent *extra* failure).
    pub fn random(seed: u64, workers: usize, max_superstep: u64, count: usize) -> Self {
        assert!(workers > 0 && max_superstep > 0);
        let capacity = workers as u64 * (1 + 2 * max_superstep);
        assert!(
            count as u64 <= capacity,
            "cannot draw {count} distinct faults from a space of {capacity}"
        );
        let mut r = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        let mut seen = std::collections::HashSet::new();
        while plan.faults.len() < count {
            let worker = r.below_u32(workers as u32) as usize;
            let phase = match r.below_u32(3) {
                0 => FaultPhase::Load,
                1 => FaultPhase::Compute,
                _ => FaultPhase::Barrier,
            };
            let superstep = match phase {
                FaultPhase::Load => 0,
                _ => 1 + r.below_u64(max_superstep),
            };
            if seen.insert((worker, superstep, phase)) {
                plan = plan.kill(worker, superstep, phase);
            }
        }
        plan
    }

    /// Adds a master kill order: the control loop halts with
    /// `JobError::Halted` when it reaches `point`. Fires once, like
    /// worker kills — the restored run passes the same hook untriggered
    /// **when the same plan `Arc` is re-attached** (the service's
    /// `resume_job` contract).
    pub fn master_kill(mut self, point: MasterKillPoint) -> Self {
        self.master_kills.push(MasterKill {
            point,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// A seeded random master-kill schedule of `count` distinct points
    /// over supersteps `1..=max_superstep` plus the load hook. Same-seed
    /// plans are identical, like [`FaultPlan::random`].
    pub fn random_master_kills(seed: u64, max_superstep: u64, count: usize) -> Self {
        assert!(max_superstep > 0);
        let capacity = 1 + 2 * max_superstep;
        assert!(
            count as u64 <= capacity,
            "cannot draw {count} distinct master kills from a space of {capacity}"
        );
        let mut r = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        let mut seen = std::collections::HashSet::new();
        while plan.master_kills.len() < count {
            let point = match r.below_u32(3) {
                0 => MasterKillPoint::Load,
                1 => MasterKillPoint::MidBarrier(1 + r.below_u64(max_superstep)),
                _ => MasterKillPoint::BetweenGrants(1 + r.below_u64(max_superstep)),
            };
            if seen.insert(point) {
                plan = plan.master_kill(point);
            }
        }
        plan
    }

    /// True if the master must halt at `point` now (fire-once).
    pub fn master_kill_at(&self, point: MasterKillPoint) -> bool {
        self.master_kills.iter().any(|k| {
            k.point == point
                && k.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
        })
    }

    /// The master-kill schedule, for determinism assertions in tests.
    pub fn master_kill_spec(&self) -> Vec<MasterKillPoint> {
        self.master_kills.iter().map(|k| k.point).collect()
    }

    /// Number of master kill orders in the plan.
    pub fn master_kill_count(&self) -> usize {
        self.master_kills.len()
    }

    /// Attaches a seeded network-fault schedule (drops, duplicates,
    /// delays on the simulated wire) to this plan. The runner installs
    /// it on every fabric endpoint.
    pub fn with_net(mut self, net: Arc<NetFaultPlan>) -> Self {
        self.net = Some(net);
        self
    }

    /// The attached network-fault schedule, if any.
    pub fn net_plan(&self) -> Option<&Arc<NetFaultPlan>> {
        self.net.as_ref()
    }

    /// Number of kill orders in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The schedule as `(worker, superstep, phase)` triples, for
    /// determinism assertions in tests.
    pub fn spec(&self) -> Vec<(usize, u64, FaultPhase)> {
        self.faults
            .iter()
            .map(|f| (f.worker, f.superstep, f.phase))
            .collect()
    }

    /// True if `worker` must die now. Each matching fault fires at most
    /// once; re-execution of the same superstep after recovery passes.
    pub fn should_fail(&self, worker: usize, superstep: u64, phase: FaultPhase) -> bool {
        self.faults.iter().any(|f| {
            f.worker == worker
                && f.superstep == superstep
                && f.phase == phase
                && f.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
        })
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.fired.load(Ordering::Acquire))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_fires_once() {
        let p = FaultPlan::new().kill(2, 5, FaultPhase::Compute);
        assert!(!p.should_fail(1, 5, FaultPhase::Compute));
        assert!(!p.should_fail(2, 4, FaultPhase::Compute));
        assert!(!p.should_fail(2, 5, FaultPhase::Barrier));
        assert!(p.should_fail(2, 5, FaultPhase::Compute));
        // Re-execution after recovery does not re-trigger.
        assert!(!p.should_fail(2, 5, FaultPhase::Compute));
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn multiple_faults_fire_independently() {
        let p = FaultPlan::new()
            .kill(0, 2, FaultPhase::Barrier)
            .kill(1, 2, FaultPhase::Barrier);
        assert!(p.should_fail(0, 2, FaultPhase::Barrier));
        assert!(p.should_fail(1, 2, FaultPhase::Barrier));
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn random_plan_is_seed_deterministic() {
        let a = FaultPlan::random(0xFA11, 4, 20, 5);
        let b = FaultPlan::random(0xFA11, 4, 20, 5);
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.len(), 5);
        let c = FaultPlan::random(0xFA12, 4, 20, 5);
        assert_ne!(a.spec(), c.spec(), "different seed, different schedule");
        for (w, s, ph) in a.spec() {
            assert!(w < 4);
            match ph {
                FaultPhase::Load => assert_eq!(s, 0),
                _ => assert!((1..=20).contains(&s)),
            }
        }
    }

    #[test]
    fn random_plan_has_no_duplicate_triples() {
        // A small space forces collisions in the raw draw stream, so
        // this exercises the reject-and-regenerate path.
        for seed in 0..64u64 {
            let workers = 2;
            let max_ss = 3;
            let count = 8;
            let p = FaultPlan::random(seed, workers, max_ss, count);
            assert_eq!(p.len(), count, "seed {seed}: len must match count");
            let spec = p.spec();
            let distinct: std::collections::HashSet<_> = spec.iter().collect();
            assert_eq!(distinct.len(), spec.len(), "seed {seed}: duplicate triple");
        }
        // Regeneration keeps the schedule seed-stable.
        let a = FaultPlan::random(99, 2, 3, 8);
        let b = FaultPlan::random(99, 2, 3, 8);
        assert_eq!(a.spec(), b.spec());
        // Drawing the entire space is allowed and exact.
        let full = 2 * (1 + 2 * 3);
        let p = FaultPlan::random(7, 2, 3, full);
        assert_eq!(p.len(), full);
    }

    #[test]
    #[should_panic(expected = "distinct faults")]
    fn random_plan_rejects_oversized_count() {
        let _ = FaultPlan::random(1, 1, 1, 4);
    }

    #[test]
    fn net_plan_attachment() {
        use hybridgraph_net::NetFaultPlan;
        let p = FaultPlan::new().with_net(Arc::new(NetFaultPlan::new(3).with_drops(100, 2)));
        assert!(p.net_plan().is_some());
        assert!(FaultPlan::new().net_plan().is_none());
    }

    #[test]
    fn empty_plan_never_fails() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert!(!p.should_fail(0, 1, FaultPhase::Load));
        assert!(!p.master_kill_at(MasterKillPoint::Load));
    }

    #[test]
    fn master_kill_fires_once() {
        let p = FaultPlan::new()
            .master_kill(MasterKillPoint::MidBarrier(3))
            .master_kill(MasterKillPoint::BetweenGrants(5));
        assert!(!p.master_kill_at(MasterKillPoint::MidBarrier(2)));
        assert!(!p.master_kill_at(MasterKillPoint::BetweenGrants(3)));
        assert!(p.master_kill_at(MasterKillPoint::MidBarrier(3)));
        // The restored run passes the same hook untriggered.
        assert!(!p.master_kill_at(MasterKillPoint::MidBarrier(3)));
        assert!(p.master_kill_at(MasterKillPoint::BetweenGrants(5)));
        assert_eq!(p.master_kill_count(), 2);
        // Master kills are orthogonal to worker kill orders.
        assert!(p.is_empty());
    }

    #[test]
    fn random_master_kills_are_seed_deterministic() {
        let a = FaultPlan::random_master_kills(0xC8A0, 10, 4);
        let b = FaultPlan::random_master_kills(0xC8A0, 10, 4);
        assert_eq!(a.master_kill_spec(), b.master_kill_spec());
        assert_eq!(a.master_kill_count(), 4);
        let c = FaultPlan::random_master_kills(0xC8A1, 10, 4);
        assert_ne!(a.master_kill_spec(), c.master_kill_spec());
        let distinct: std::collections::HashSet<_> = a.master_kill_spec().into_iter().collect();
        assert_eq!(distinct.len(), 4, "points must be distinct");
        for p in a.master_kill_spec() {
            match p {
                MasterKillPoint::Load => {}
                MasterKillPoint::MidBarrier(s) | MasterKillPoint::BetweenGrants(s) => {
                    assert!((1..=10).contains(&s));
                }
            }
        }
    }
}
