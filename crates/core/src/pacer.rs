//! Cooperative pacing hooks for multi-job scheduling.
//!
//! A multi-tenant service runs many jobs concurrently but must stay
//! byte-identically replayable. The engine therefore never time-slices:
//! a job's master acquires the pacer before each unit of work (the load
//! phase, one superstep, the final collect) and releases it afterwards
//! with the modeled seconds the unit consumed. A scheduler implementing
//! [`StepPacer`] grants units one at a time in an order that is a pure
//! function of the reported modeled times and its seed — so the global
//! interleaving (and with it every shared-cache state) replays exactly.
//!
//! Single-job runs leave [`JobConfig::pacer`](crate::config::JobConfig::pacer)
//! unset and pay nothing.

/// One job's handle into a deterministic multi-job scheduler.
///
/// The handle is job-specific: the scheduler hands each admitted job its
/// own `Arc<dyn StepPacer>` that knows which lane the calls belong to.
pub trait StepPacer: Send + Sync + std::fmt::Debug {
    /// Blocks until the scheduler grants this job the engine. Called by
    /// the job's master immediately before the load phase, before every
    /// superstep, and before the final value collect.
    fn acquire(&self);

    /// Returns the engine to the scheduler, reporting the modeled seconds
    /// the finished unit of work consumed (drives the virtual-time
    /// round-robin order).
    fn release(&self, modeled_secs: f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Debug, Default)]
    struct Counting {
        acquires: AtomicU64,
        releases: AtomicU64,
    }

    impl StepPacer for Counting {
        fn acquire(&self) {
            self.acquires.fetch_add(1, Ordering::SeqCst);
        }

        fn release(&self, _modeled_secs: f64) {
            self.releases.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn trait_object_dispatch() {
        let p = Arc::new(Counting::default());
        let dynp: Arc<dyn StepPacer> = p.clone();
        dynp.acquire();
        dynp.release(0.5);
        assert_eq!(p.acquires.load(Ordering::SeqCst), 1);
        assert_eq!(p.releases.load(Ordering::SeqCst), 1);
    }
}
