//! Superstep executors for the four message-handling strategies.
//!
//! All executors obey the same BSP contract: a superstep's packets are
//! fully drained before the executor returns, so the master's barrier
//! (waiting for every worker's report before issuing the next superstep)
//! guarantees isolation between supersteps.

pub mod bpull;
pub mod hybrid_async;
pub mod pull;
pub mod push;

use crate::metrics::StepReport;
use crate::program::VertexProgram;
use crate::worker::Worker;
use hybridgraph_graph::{VertexId, WorkerId};
use hybridgraph_net::packet::Packet;
use hybridgraph_net::wire::{encode_batch, BatchKind};
use hybridgraph_storage::Record;
use std::io;
use std::time::Instant;

/// Marker message of the error the executors return when the master
/// broadcasts [`Packet::Abort`] mid-superstep because a peer failed.
pub(crate) const ABORT_MARKER: &str = "superstep aborted by master";

/// The abort marker error. The worker thread that returns it stays alive
/// and waits for the master's rollback command.
pub(crate) fn abort_error() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, ABORT_MARKER)
}

/// True if `e` is the abort marker (as opposed to a genuine failure).
pub(crate) fn is_abort(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted && e.to_string().contains(ABORT_MARKER)
}

/// Sends a push batch: plain-encoded by default, or combined within the
/// batch when `push_sender_combining` is on (the `pushM+com` variant of
/// Appendix E — only the messages that happen to share a partial buffer
/// can merge, which is why small sending thresholds cripple the gain).
pub(crate) fn send_plain<P: VertexProgram>(
    w: &Worker<P>,
    peer: WorkerId,
    mut batch: Vec<(VertexId, P::Message)>,
) {
    if batch.is_empty() {
        return;
    }
    let kind = if w.cfg.push_sender_combining && w.program.combiner().is_some() {
        BatchKind::Combined
    } else {
        BatchKind::Plain
    };
    let combiner = if kind == BatchKind::Combined {
        w.program.combiner()
    } else {
        None
    };
    let (payload, stats) = encode_batch(kind, &mut batch, combiner);
    w.ep.send(
        peer,
        Packet::Messages {
            kind,
            payload: payload.into(),
            stats,
            for_block: None,
        },
    );
}

/// Superstep 1 for the pull family: no messages exist yet, so every
/// initially-active vertex runs `update()` with an empty message list and
/// (possibly) raises its responding flag. No packets are exchanged —
/// b-pull "starts exchanging messages from the 2nd superstep" (Fig. 17).
pub(crate) fn run_init_step<P: VertexProgram>(w: &mut Worker<P>) -> io::Result<StepReport> {
    let t0 = Instant::now();
    let mut rep = StepReport::default();
    init_updates(w, &mut rep)?;
    w.trace_phase("init");
    w.finish_superstep(&mut rep);
    rep.wall_secs = t0.elapsed().as_secs_f64();
    Ok(rep)
}

/// The update half of superstep 1 (shared by b-pull's local-only first
/// superstep and the pull baseline's first superstep, which additionally
/// scatters signals before finishing).
pub(crate) fn init_updates<P: VertexProgram>(
    w: &mut Worker<P>,
    rep: &mut StepReport,
) -> io::Result<()> {
    let program = std::sync::Arc::clone(&w.program);
    let info = w.info;
    // Residuals feed tolerance-based termination only; programs without a
    // tolerance skip the bookkeeping entirely (byte-identical runs).
    let track_residual = program.tolerance().is_some();
    for b in w.layout.blocks_of_worker(w.id).collect::<Vec<_>>() {
        let br = w.layout.block_range(b);
        let actives: Vec<u32> = br
            .clone()
            .filter(|&v| program.initially_active(VertexId(v), &info))
            .collect();
        if actives.is_empty() {
            continue;
        }
        let mut vals = w.values.read_range(br.clone())?;
        w.note_value_preimage(br.start, &vals);
        let block_bytes = vals.len() as u64 * P::Value::BYTES as u64;
        rep.sem.value_update_bytes += block_bytes;
        for v in actives {
            let idx = (v - br.start) as usize;
            let upd = program.update(VertexId(v), &info, 1, &vals[idx], &[]);
            if track_residual {
                rep.max_residual = rep
                    .max_residual
                    .max(program.residual(&vals[idx], &upd.value));
            }
            rep.updated += 1;
            if upd.respond {
                let local = (v - w.range.start) as usize;
                w.respond_next.set(local);
            }
            vals[idx] = upd.value;
        }
        w.values.write_range(br.clone(), &vals)?;
        rep.sem.value_update_bytes += block_bytes;
    }
    Ok(())
}
