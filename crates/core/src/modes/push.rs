//! Push-based supersteps: Giraph-style `push` and MOCgraph-style `pushM`.
//!
//! One superstep is `load()` (drain the messages received last superstep,
//! reading back any spilled to disk), `update()` per active vertex (block
//! by block, with the vertex's adjacency run read for every computed
//! vertex — the paper's `IO(Ē^t)` follows the *active* set), `pushRes()`
//! for responders (plain-encoded batches flushed at the sending
//! threshold), then an exchange phase that drains incoming batches into
//! the receive buffer, spilling past `B_i`.
//!
//! `pushM` differs only at the receiver: messages for hot (memory-
//! resident, high-in-degree) vertices are combined online into an
//! accumulator and never touch disk; cold messages spill as in push.
//!
//! With `send = false` this executor is the push half of the
//! push → b-pull switch superstep (Fig. 6): `load()` + `update()` only,
//! leaving the responding flags for `pullRes()` to pick up next superstep.

use super::send_plain;
use crate::metrics::StepReport;
use crate::program::VertexProgram;
use crate::worker::Worker;
use hybridgraph_graph::{VertexId, WorkerId};
use hybridgraph_net::flow::ThresholdBuffer;
use hybridgraph_net::packet::Packet;
use hybridgraph_net::wire::{decode_batch, BatchKind};
use hybridgraph_storage::{AccessClass, Record};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Runs one push-family superstep.
///
/// * `send` — run `pushRes()` (false for the push → b-pull switch step).
/// * `online` — MOCgraph message online computing (requires a combiner).
pub fn run_push_step<P: VertexProgram>(
    w: &mut Worker<P>,
    superstep: u64,
    send: bool,
    online: bool,
) -> io::Result<StepReport> {
    let t0 = Instant::now();
    w.begin_superstep(superstep);
    let mut rep = StepReport::default();
    let mut blocking = 0.0;
    let program = Arc::clone(&w.program);
    let info = w.info;
    let workers = w.cfg.workers;
    // Residuals only matter to tolerance-terminated programs; others skip
    // the per-vertex comparison so existing runs stay byte-identical.
    let track_residual = program.tolerance().is_some();

    // load(): messages received in the previous superstep.
    let work: Vec<(u32, Vec<P::Message>)> = if superstep == 1 {
        w.range
            .clone()
            .filter(|&v| program.initially_active(VertexId(v), &info))
            .map(|v| (v, Vec::new()))
            .collect()
    } else {
        drain_inbox(w, &mut rep)?
    };
    w.trace_phase("load");

    // update() + pushRes(), block by block.
    let mut tbuf: ThresholdBuffer<P::Message> =
        ThresholdBuffer::new(workers, w.cfg.sending_threshold);
    let mut cur: Option<(std::ops::Range<u32>, Vec<P::Value>)> = None;
    for (v, msgs) in &work {
        let v = VertexId(*v);
        let br = w.layout.block_range(w.layout.block_of(v));
        if cur.as_ref().map(|(r, _)| r.clone()) != Some(br.clone()) {
            if let Some((r, vals)) = cur.take() {
                rep.sem.value_update_bytes += vals.len() as u64 * P::Value::BYTES as u64;
                w.values.write_range(r, &vals)?;
            }
            let vals = w.values.read_range(br.clone())?;
            w.note_value_preimage(br.start, &vals);
            rep.sem.value_update_bytes += vals.len() as u64 * P::Value::BYTES as u64;
            cur = Some((br.clone(), vals));
        }
        let (_, vals) = cur.as_mut().unwrap();
        let idx = (v.0 - br.start) as usize;
        let upd = program.update(v, &info, superstep, &vals[idx], msgs);
        if track_residual {
            rep.max_residual = rep
                .max_residual
                .max(program.residual(&vals[idx], &upd.value));
        }
        rep.updated += 1;
        rep.messages_consumed += msgs.len() as u64;
        let local = w.local(v);
        if upd.respond {
            w.respond_next.set(local);
        }
        if send {
            // The vertex object is loaded with its edges for every
            // computed vertex (Giraph), whether or not it responds. The
            // read goes through the cross-job shared cache when the job
            // has one; a miss charges the physical bytes (== logical
            // without a codec) to `IO(Ē^t)`, a hit charges nothing.
            let edges = w.read_out_edges(v, AccessClass::SeqRead, &mut rep)?;
            if upd.respond {
                let outd = w.out_degrees[local];
                for e in edges.iter() {
                    if let Some(m) = program.message(v, &upd.value, outd, e) {
                        rep.messages_produced += 1;
                        let peer = w.partition.worker_of(e.dst);
                        if let Some(batch) = tbuf.push(peer, e.dst, m) {
                            send_plain(w, peer, batch);
                        }
                    }
                }
            }
        }
        vals[idx] = upd.value;
        let mem = tbuf.memory_bytes() + (br.len() * P::Value::BYTES) as u64;
        w.note_memory(mem + w.standing_memory_bytes());
    }
    if let Some((r, vals)) = cur.take() {
        rep.sem.value_update_bytes += vals.len() as u64 * P::Value::BYTES as u64;
        w.values.write_range(r, &vals)?;
    }
    w.trace_phase(if send { "compute+pushRes" } else { "compute" });

    // Exchange phase.
    if send {
        for (peer, batch) in tbuf.flush_all() {
            send_plain(w, peer, batch);
        }
        for p in 0..workers {
            w.ep.send(WorkerId::from(p), Packet::DoneSending);
        }
        let mut done = 0usize;
        let spill_before = w
            .spill
            .as_ref()
            .map(|s| s.spilled_bytes())
            .unwrap_or_default();
        // Batches are staged per sender and sunk in worker-id order
        // below: arrival interleaving across senders is scheduling-
        // dependent, and sinking in slot order makes the spill file's
        // *content* (not just its byte count) a pure function of the
        // superstep — coded spill frames compress to the same bytes run
        // to run, the spill-side twin of `MsgAccumulator::
        // merge_in_order`.
        let mut inbound: Vec<Vec<(VertexId, P::Message)>> =
            (0..workers).map(|_| Vec::new()).collect();
        while done < workers {
            let env = w.recv_timed(&mut blocking);
            match env.packet {
                Packet::Messages { kind, payload, .. } => {
                    debug_assert_ne!(kind, BatchKind::Concatenated, "push never concatenates");
                    inbound[env.from.index()].extend(decode_batch::<P::Message>(kind, &payload));
                }
                Packet::DoneSending => done += 1,
                Packet::Abort => return Err(super::abort_error()),
                other => unreachable!("unexpected packet in push step: {other:?}"),
            }
        }
        for pairs in inbound {
            for (dst, m) in pairs {
                sink_message(w, dst, m, online)?;
            }
        }
        let spill_after = w
            .spill
            .as_ref()
            .map(|s| s.spilled_bytes())
            .unwrap_or_default();
        rep.sem.msg_spill_bytes += spill_after - spill_before;
        w.trace_phase("exchange");
    }

    w.finish_superstep(&mut rep);
    rep.wall_secs = t0.elapsed().as_secs_f64();
    rep.blocking_secs = blocking;
    Ok(rep)
}

/// Routes one received message into the receive store: online-combined
/// for hot vertices in pushM, spilled-past-`B_i` otherwise.
pub(crate) fn sink_message<P: VertexProgram>(
    w: &mut Worker<P>,
    dst: VertexId,
    m: P::Message,
    online: bool,
) -> io::Result<()> {
    debug_assert!(w.is_local(dst), "message routed to wrong worker");
    if online {
        let local = w.local(dst);
        let program = Arc::clone(&w.program);
        let combiner = program
            .combiner()
            .expect("pushM requires a combiner (message online computing)");
        let hot = w.hotset.as_mut().expect("pushM requires the hot set");
        if hot.hot.get(local) {
            let slot = &mut hot.acc[local];
            *slot = Some(match slot.take() {
                Some(acc) => combiner.combine(&acc, &m),
                None => m,
            });
            return Ok(());
        }
    }
    w.spill
        .as_mut()
        .expect("push needs a spill buffer")
        .push(dst, m)?;
    Ok(())
}

/// `load()`: drains last superstep's messages (hot accumulators + spill
/// buffer) into destination-sorted groups.
pub(crate) fn drain_inbox<P: VertexProgram>(
    w: &mut Worker<P>,
    rep: &mut StepReport,
) -> io::Result<Vec<(u32, Vec<P::Message>)>> {
    let mut pairs: Vec<(VertexId, P::Message)> = Vec::new();
    let base = w.range.start;
    if let Some(hot) = w.hotset.as_mut() {
        for (i, slot) in hot.acc.iter_mut().enumerate() {
            if let Some(m) = slot.take() {
                pairs.push((VertexId(base + i as u32), m));
            }
        }
    }
    if let Some(spill) = w.spill.as_mut() {
        pairs.extend(spill.drain()?.into_sorted());
    }
    // Canonical order: destination, then encoded message bytes. Arrival
    // order depends on thread scheduling; sorting by content as well as
    // destination makes non-commutative float reductions inside
    // `update()` bit-identical run to run (and across a recovery replay).
    pairs.sort_by_cached_key(|(d, m)| {
        let mut bytes = vec![0u8; P::Message::BYTES];
        m.write_to(&mut bytes);
        (d.0, bytes)
    });
    rep.delivered_raw = pairs.len() as u64;
    let mut groups: Vec<(u32, Vec<P::Message>)> = Vec::new();
    for (d, m) in pairs {
        match groups.last_mut() {
            Some((last, msgs)) if *last == d.0 => msgs.push(m),
            _ => groups.push((d.0, vec![m])),
        }
    }
    rep.delivered_distinct = groups.len() as u64;
    Ok(groups)
}
