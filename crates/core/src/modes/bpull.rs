//! Block-centric pulling (paper §4, Algorithms 1–2).
//!
//! Superstep protocol per worker:
//!
//! 1. **Pull-Request** — broadcast `PullRequest{b}` for each local Vblock
//!    (two in flight when pre-pulling, §4.3).
//! 2. **Serve** — on receiving a request for block `i`, scan every local
//!    Eblock `g_{j,i}` whose metadata passes the `res` + bitmap check,
//!    read the svertex value for each *responding* fragment (random read),
//!    generate messages via `pullRes`, concatenate/combine, reply with
//!    message batches and an `EndOfResponses{i}` marker.
//! 3. **Update** — once all `T` peers have ended a block's responses,
//!    run `update()` for its message destinations; new values are staged
//!    and flushed only after every peer has finished the superstep, so
//!    concurrent serving always reads superstep-`t−1` values (BSP).
//! 4. A worker that has updated all its blocks broadcasts
//!    `SuperstepDone` but keeps serving until all peers have too.
//!
//! With `also_push` this executor is the b-pull → push switch superstep
//! (Fig. 6): after each block's `update()`, `pushRes()` immediately pushes
//! messages from the new values into the peers' receive/spill buffers.

use super::push::sink_message;
use super::{run_init_step, send_plain};
use crate::metrics::StepReport;
use crate::program::VertexProgram;
use crate::worker::{MsgAccumulator, Worker};
use hybridgraph_graph::{BlockId, VertexId, WorkerId};
use hybridgraph_net::flow::ThresholdBuffer;
use hybridgraph_net::packet::Packet;
use hybridgraph_net::wire::{decode_batch, encode_batch, BatchKind};
use hybridgraph_storage::{AccessClass, Record};
use std::collections::VecDeque;
use std::io;
use std::sync::Arc;
use std::time::Instant;

struct Inflight<M> {
    block: BlockId,
    ends: usize,
    /// One accumulator per sending peer. Responses arrive in whatever
    /// order the fabric interleaves them; keeping per-sender partials and
    /// merging them in worker order at completion makes non-commutative
    /// float combining bit-identical run to run (and across a recovery
    /// replay).
    inboxes: Vec<MsgAccumulator<M>>,
}

/// Runs one b-pull superstep (`also_push` makes it the fused
/// b-pull → push switch superstep).
pub fn run_bpull_step<P: VertexProgram>(
    w: &mut Worker<P>,
    superstep: u64,
    also_push: bool,
) -> io::Result<StepReport> {
    let t0 = Instant::now();
    w.begin_superstep(superstep);
    if superstep == 1 {
        return run_init_step(w);
    }
    let mut rep = StepReport::default();
    let mut blocking = 0.0;
    let workers = w.cfg.workers;
    let combinable = w.combinable();

    let mut pending: VecDeque<BlockId> = w.layout.blocks_of_worker(w.id).collect();
    // During a confined-recovery replay, survivors re-serve their logged
    // responses without flow control (the whole superstep's packets arrive
    // up front), so every block must already be in flight when they land.
    let pipeline = if w.replay {
        pending.len().max(1)
    } else if combinable && w.cfg.pre_pull {
        2
    } else {
        1
    };
    let mut inflight: Vec<Inflight<P::Message>> = Vec::new();
    let mut tbuf: ThresholdBuffer<P::Message> =
        ThresholdBuffer::new(workers, w.cfg.sending_threshold);

    let issue = |w: &Worker<P>, b: BlockId, inflight: &mut Vec<Inflight<P::Message>>| {
        for p in 0..workers {
            w.ep.send(WorkerId::from(p), Packet::PullRequest { block: b });
        }
        inflight.push(Inflight {
            block: b,
            ends: 0,
            inboxes: (0..workers)
                .map(|_| MsgAccumulator::new(combinable))
                .collect(),
        });
    };
    for _ in 0..pipeline {
        if let Some(b) = pending.pop_front() {
            issue(w, b, &mut inflight);
        }
    }
    w.trace_phase("Pull-Request");

    let mut my_done = false;
    let mut done_peers = 0usize;
    let mut push_inbound: Vec<Vec<(VertexId, P::Message)>> =
        (0..workers).map(|_| Vec::new()).collect();
    loop {
        if inflight.is_empty() && pending.is_empty() && !my_done {
            my_done = true;
            if also_push {
                for (peer, batch) in tbuf.flush_all() {
                    send_plain(w, peer, batch);
                }
            }
            for p in 0..workers {
                w.ep.send(WorkerId::from(p), Packet::SuperstepDone);
            }
        }
        if my_done && done_peers == workers {
            break;
        }
        let env = w.recv_timed(&mut blocking);
        match env.packet {
            Packet::PullRequest { block } => serve_pull(w, env.from, block, &mut rep)?,
            Packet::Messages {
                kind,
                payload,
                for_block: Some(b),
                ..
            } => {
                let pairs = decode_batch::<P::Message>(kind, &payload);
                let program = Arc::clone(&w.program);
                let fl = inflight
                    .iter_mut()
                    .find(|f| f.block == b)
                    .expect("response for a block not in flight");
                fl.inboxes[env.from.index()].accept(pairs, program.combiner());
            }
            Packet::Messages {
                kind,
                payload,
                for_block: None,
                ..
            } => {
                // Push messages arriving during the fused switch step:
                // staged per sender, sunk in worker-id order after the
                // loop so the spill file's content stays deterministic
                // (see the push executor's exchange phase).
                push_inbound[env.from.index()].extend(decode_batch::<P::Message>(kind, &payload));
            }
            Packet::EndOfResponses { block } => {
                let pos = inflight
                    .iter()
                    .position(|f| f.block == block)
                    .expect("end-of-responses for a block not in flight");
                inflight[pos].ends += 1;
                if inflight[pos].ends == workers {
                    let fl = inflight.swap_remove(pos);
                    let inbox_mem = |f: &Inflight<P::Message>| -> u64 {
                        f.inboxes.iter().map(|i| i.memory_bytes()).sum()
                    };
                    let mem: u64 = inflight.iter().map(inbox_mem).sum::<u64>() + inbox_mem(&fl);
                    w.note_memory(mem + w.standing_memory_bytes());
                    let program = Arc::clone(&w.program);
                    let inbox = MsgAccumulator::merge_in_order(fl.inboxes, program.combiner());
                    update_block(
                        w, &mut rep, superstep, fl.block, inbox, also_push, &mut tbuf,
                    )?;
                    if let Some(nb) = pending.pop_front() {
                        issue(w, nb, &mut inflight);
                    }
                }
            }
            Packet::SuperstepDone => done_peers += 1,
            Packet::Abort => return Err(super::abort_error()),
            other => unreachable!("unexpected packet in b-pull step: {other:?}"),
        }
    }

    let spill_before = w.spill.as_ref().map(|s| s.spilled_bytes()).unwrap_or(0);
    for pairs in push_inbound {
        for (dst, m) in pairs {
            sink_message(w, dst, m, false)?;
        }
    }
    let spill_after = w.spill.as_ref().map(|s| s.spilled_bytes()).unwrap_or(0);
    rep.sem.msg_spill_bytes += spill_after - spill_before;

    w.trace_phase("Pull-Respond+update");
    w.flush_staged()?;
    w.trace_phase("flush");
    w.finish_superstep(&mut rep);
    rep.wall_secs = t0.elapsed().as_secs_f64();
    rep.blocking_secs = blocking;
    Ok(rep)
}

/// Pull-Respond (Algorithm 2): answers a request for Vblock `block`.
fn serve_pull<P: VertexProgram>(
    w: &Worker<P>,
    from: WorkerId,
    block: BlockId,
    rep: &mut StepReport,
) -> io::Result<()> {
    let ve = w
        .veblock
        .as_ref()
        .expect("b-pull requires the VE-BLOCK store");
    let program = Arc::clone(&w.program);
    let mut out: Vec<(VertexId, P::Message)> = Vec::new();
    for (jidx, j) in w.layout.blocks_of_worker(w.id).enumerate() {
        // X_j.res and bitmap short-circuit: skip blocks with no responders
        // or no edges into the requested block.
        if !w.block_res[jidx] || !ve.meta(j).has_edges_to(block) {
            continue;
        }
        let info = *ve.eblock_info(j, block);
        let frags = ve.scan_eblock(j, block)?;
        // Physical stored bytes (== logical without a codec), split
        // proportionally into edge and fragment-auxiliary shares.
        let (stored_edge, stored_aux) = info.stored_split();
        rep.sem.bpull_edge_bytes += stored_edge;
        rep.sem.fragment_aux_bytes += stored_aux;
        for frag in frags {
            let local = w.local(frag.src);
            if !w.respond.get(local) {
                continue;
            }
            let val = w.values.read_one(frag.src)?;
            rep.sem.svertex_rand_bytes += P::Value::BYTES as u64;
            let outd = w.out_degrees[local];
            for e in &frag.edges {
                if let Some(m) = program.message(frag.src, &val, outd, e) {
                    rep.messages_produced += 1;
                    out.push((e.dst, m));
                }
            }
        }
    }
    send_response(w, from, block, out);
    w.ep.send(from, Packet::EndOfResponses { block });
    Ok(())
}

/// Sends a block's response, concatenated or fully combined.
///
/// Combined responses are buffered whole before sending ("messages in a
/// sub-buffer will not be sent until all messages are produced", §4.3);
/// concatenate-only responses flush in sending-threshold chunks.
fn send_response<P: VertexProgram>(
    w: &Worker<P>,
    to: WorkerId,
    block: BlockId,
    mut out: Vec<(VertexId, P::Message)>,
) {
    if out.is_empty() {
        return;
    }
    let kind = w.batch_kind();
    match kind {
        BatchKind::Combined => {
            let (payload, stats) = encode_batch(kind, &mut out, w.program.combiner());
            w.ep.send(
                to,
                Packet::Messages {
                    kind,
                    payload: payload.into(),
                    stats,
                    for_block: Some(block),
                },
            );
        }
        _ => {
            out.sort_by_key(|(d, _)| *d);
            let per = (w.cfg.sending_threshold / (4 + P::Message::BYTES)).max(1);
            for chunk in out.chunks(per) {
                let mut chunk = chunk.to_vec();
                let (payload, stats) = encode_batch(BatchKind::Concatenated, &mut chunk, None);
                w.ep.send(
                    to,
                    Packet::Messages {
                        kind: BatchKind::Concatenated,
                        payload: payload.into(),
                        stats,
                        for_block: Some(block),
                    },
                );
            }
        }
    }
}

/// Pull-Request's update half (Algorithm 1 lines 7–9), plus the fused
/// `pushRes` when switching to push.
fn update_block<P: VertexProgram>(
    w: &mut Worker<P>,
    rep: &mut StepReport,
    superstep: u64,
    block: BlockId,
    inbox: MsgAccumulator<P::Message>,
    also_push: bool,
    tbuf: &mut ThresholdBuffer<P::Message>,
) -> io::Result<()> {
    let groups = inbox.into_groups();
    if groups.is_empty() {
        return Ok(());
    }
    let program = Arc::clone(&w.program);
    let info = w.info;
    let track_residual = program.tolerance().is_some();
    let br = w.layout.block_range(block);
    let vals = w.values.read_range(br.clone())?;
    w.note_value_preimage(br.start, &vals);
    rep.sem.value_update_bytes += vals.len() as u64 * P::Value::BYTES as u64;
    for (vg, msgs) in groups {
        let v = VertexId(vg);
        debug_assert!(br.contains(&vg), "message for vertex outside block");
        let idx = (vg - br.start) as usize;
        let upd = program.update(v, &info, superstep, &vals[idx], &msgs);
        if track_residual {
            rep.max_residual = rep
                .max_residual
                .max(program.residual(&vals[idx], &upd.value));
        }
        rep.updated += 1;
        rep.messages_consumed += msgs.len() as u64;
        let local = w.local(v);
        if upd.respond {
            w.respond_next.set(local);
            if also_push {
                let adj = w
                    .adjacency
                    .as_ref()
                    .expect("hybrid keeps the adjacency store");
                let edges = adj.edges_of(v, AccessClass::SeqRead)?;
                rep.sem.push_edge_bytes += adj.stored_bytes_of(v);
                let outd = w.out_degrees[local];
                for e in &edges {
                    if let Some(m) = program.message(v, &upd.value, outd, e) {
                        rep.messages_produced += 1;
                        let peer = w.partition.worker_of(e.dst);
                        if let Some(batch) = tbuf.push(peer, e.dst, m) {
                            send_plain(w, peer, batch);
                        }
                    }
                }
            }
        }
        // Staged: flushed after every peer stops reading this superstep.
        w.staged.push((vg, upd.value));
        rep.sem.value_update_bytes += P::Value::BYTES as u64;
    }
    Ok(())
}
