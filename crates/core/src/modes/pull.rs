//! Per-vertex pulling — the disk-extended GraphLab PowerGraph analogue.
//!
//! Every superstep, each destination vertex with in-edges pulls from every
//! worker hosting one of its in-edges (its "mirrors"): requests are
//! per-vertex (batched into id-list packets), the responder reads the
//! vertex's in-edge fragment from the destination-grouped [`GatherStore`]
//! (a random read), and reads each *responding* source vertex's value
//! through the bounded LRU cache (a random read per miss). Updates also go
//! through the cache, with dirty evictions writing values back.
//!
//! This reproduces the cost structure the paper attributes to existing
//! pull systems on disk-resident data: per-vertex requests ("up to
//! `|V|·T` times"), and frequent random access to svertices that LRU can
//! only partially absorb (Table 5's `ext-edge-v2.5` collapse, Fig. 10's
//! `pull` bars).

use super::init_updates;
use crate::metrics::StepReport;
use crate::program::VertexProgram;
use crate::worker::{MsgAccumulator, Worker};
use hybridgraph_graph::{Edge, VertexId, WorkerId};
use hybridgraph_net::packet::Packet;
use hybridgraph_net::wire::{decode_batch, encode_batch, BatchKind};
use hybridgraph_storage::stats::{scattered_cost, seek_pad};
use hybridgraph_storage::{AccessClass, Record};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Runs one pull (gather) superstep.
pub fn run_pull_step<P: VertexProgram>(
    w: &mut Worker<P>,
    superstep: u64,
) -> io::Result<StepReport> {
    let t0 = Instant::now();
    w.begin_superstep(superstep);
    let workers = w.cfg.workers;
    if superstep == 1 {
        // Local init, then scatter activation signals from the
        // responders so superstep 2 knows who must gather.
        let mut rep = StepReport::default();
        let mut blocking = 0.0;
        init_updates(w, &mut rep)?;
        scatter_signals(w, &mut rep)?;
        for p in 0..workers {
            w.ep.send(WorkerId::from(p), Packet::SuperstepDone);
        }
        let mut done_peers = 0usize;
        while done_peers < workers {
            let env = w.recv_timed(&mut blocking);
            match env.packet {
                Packet::Signals { ids } => accept_signals(w, &ids),
                Packet::SuperstepDone => done_peers += 1,
                Packet::Abort => return Err(super::abort_error()),
                other => unreachable!("unexpected packet in pull init: {other:?}"),
            }
        }
        w.signaled.clear_all();
        w.signaled.swap(&mut w.signaled_next);
        w.trace_phase("init+scatter");
        w.finish_superstep(&mut rep);
        rep.wall_secs = t0.elapsed().as_secs_f64();
        rep.blocking_secs = blocking;
        return Ok(rep);
    }
    let mut rep = StepReport::default();
    let mut blocking = 0.0;
    let combinable = w.combinable();
    let program = Arc::clone(&w.program);

    // Request phase: every *signaled* local vertex pulls from each of its
    // mirror workers (including itself, over loopback) — PowerGraph's
    // scatter-driven activation.
    let mut req_bufs: Vec<Vec<u8>> = vec![Vec::new(); workers];
    let signaled: Vec<usize> = w.signaled.ones().collect();
    for i in signaled {
        let mask = w.mirror_peers[i];
        if mask == 0 {
            continue;
        }
        let v = w.range.start + i as u32;
        for (p, buf) in req_bufs.iter_mut().enumerate() {
            if (mask >> p) & 1 == 1 {
                buf.extend_from_slice(&v.to_le_bytes());
                if buf.len() >= w.cfg.sending_threshold {
                    let ids = std::mem::take(buf);
                    w.ep.send(
                        WorkerId::from(p),
                        Packet::GatherRequests { ids: ids.into() },
                    );
                }
            }
        }
    }
    for (p, buf) in req_bufs.into_iter().enumerate() {
        if !buf.is_empty() {
            w.ep.send(
                WorkerId::from(p),
                Packet::GatherRequests { ids: buf.into() },
            );
        }
    }
    for p in 0..workers {
        w.ep.send(WorkerId::from(p), Packet::DoneRequesting);
    }
    w.trace_phase("request");

    // Event loop: serve gathers, collect responses, update when both
    // directions have quiesced. Responses accumulate per sender and merge
    // in worker order before updating, so float combining is
    // order-deterministic (bit-identical across runs and replays).
    let mut inboxes: Vec<MsgAccumulator<P::Message>> = (0..workers)
        .map(|_| MsgAccumulator::new(combinable))
        .collect();
    let mut gbufs: Vec<Vec<(VertexId, P::Message)>> = vec![Vec::new(); workers];
    let per_flush = (w.cfg.sending_threshold / (4 + P::Message::BYTES)).max(1);
    let (mut got_ends, mut served, mut done_peers) = (0usize, 0usize, 0usize);
    let mut my_done = false;
    loop {
        if got_ends == workers && served == workers && !my_done {
            let mem: u64 = inboxes.iter().map(|i| i.memory_bytes()).sum();
            w.note_memory(mem + w.standing_memory_bytes());
            let parts = std::mem::replace(
                &mut inboxes,
                (0..workers)
                    .map(|_| MsgAccumulator::new(combinable))
                    .collect(),
            );
            let groups = MsgAccumulator::merge_in_order(parts, program.combiner());
            update_cached(w, &mut rep, superstep, groups)?;
            // Scatter: responders signal their out-neighbors to gather
            // next superstep.
            scatter_signals(w, &mut rep)?;
            my_done = true;
            for p in 0..workers {
                w.ep.send(WorkerId::from(p), Packet::SuperstepDone);
            }
        }
        if my_done && done_peers == workers {
            break;
        }
        let env = w.recv_timed(&mut blocking);
        match env.packet {
            Packet::GatherRequests { ids } => {
                for chunk in ids.chunks_exact(4) {
                    let v = VertexId(u32::from_le_bytes(chunk.try_into().unwrap()));
                    serve_gather(w, v, env.from, &mut gbufs, per_flush, &mut rep)?;
                }
            }
            Packet::DoneRequesting => {
                // FIFO per pair: all of this peer's requests are served.
                let buf = std::mem::take(&mut gbufs[env.from.index()]);
                flush_gather_batch(w, env.from, buf);
                w.ep.send(env.from, Packet::EndOfGather);
                served += 1;
            }
            Packet::Messages { kind, payload, .. } => {
                let pairs = decode_batch::<P::Message>(kind, &payload);
                inboxes[env.from.index()].accept(pairs, program.combiner());
            }
            Packet::EndOfGather => got_ends += 1,
            Packet::Signals { ids } => accept_signals(w, &ids),
            Packet::SuperstepDone => done_peers += 1,
            Packet::Abort => return Err(super::abort_error()),
            other => unreachable!("unexpected packet in pull step: {other:?}"),
        }
    }

    w.signaled.clear_all();
    w.signaled.swap(&mut w.signaled_next);
    w.trace_phase("gather+update");
    w.finish_superstep(&mut rep);
    rep.wall_secs = t0.elapsed().as_secs_f64();
    rep.blocking_secs = blocking;
    Ok(rep)
}

/// PowerGraph-style scatter: every responder reads its out-edges from the
/// adjacency store and signals each destination's owner that the vertex
/// must gather next superstep.
fn scatter_signals<P: VertexProgram>(w: &mut Worker<P>, rep: &mut StepReport) -> io::Result<()> {
    let workers = w.cfg.workers;
    let responders: Vec<usize> = w.respond_next.ones().collect();
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); workers];
    for i in responders {
        let v = VertexId(w.range.start + i as u32);
        let edges = w.read_out_edges(v, hybridgraph_storage::AccessClass::SeqRead, rep)?;
        for e in edges.iter() {
            let p = w.partition.worker_of(e.dst).index();
            bufs[p].extend_from_slice(&e.dst.0.to_le_bytes());
            if bufs[p].len() >= w.cfg.sending_threshold {
                let ids = std::mem::take(&mut bufs[p]);
                w.ep.send(WorkerId::from(p), Packet::Signals { ids: ids.into() });
            }
        }
    }
    for (p, buf) in bufs.into_iter().enumerate() {
        if !buf.is_empty() {
            w.ep.send(WorkerId::from(p), Packet::Signals { ids: buf.into() });
        }
    }
    Ok(())
}

/// Marks locally-owned signal targets for the next superstep.
fn accept_signals<P: VertexProgram>(w: &mut Worker<P>, ids: &[u8]) {
    for chunk in ids.chunks_exact(4) {
        let v = VertexId(u32::from_le_bytes(chunk.try_into().unwrap()));
        let local = w.local(v);
        w.signaled_next.set(local);
    }
}

/// Reads a local vertex value through the LRU cache; misses hit the value
/// store randomly, dirty evictions write back. Both are scattered
/// accesses (request order has no locality), so each one is charged at
/// sector granularity — the cost the paper's Table 5 observes collapsing
/// the disk-extended GraphLab.
pub(crate) fn cached_value<P: VertexProgram>(
    w: &mut Worker<P>,
    v: VertexId,
    rep: &mut StepReport,
) -> io::Result<P::Value> {
    if let Some(val) = w.lru.as_mut().expect("pull needs the LRU").get(&v.0) {
        return Ok(val.clone());
    }
    let val = w.values.read_one(v)?;
    let width = P::Value::BYTES as u64;
    w.vfs.stats().record(AccessClass::RandRead, seek_pad(width));
    rep.sem.svertex_rand_bytes += scattered_cost(width);
    let evicted = w.lru.as_mut().unwrap().insert_weighted(
        v.0,
        val.clone(),
        false,
        Worker::<P>::lru_entry_weight(),
    );
    for (k, old, dirty) in evicted {
        if dirty {
            write_back(w, VertexId(k), &old)?;
        }
    }
    Ok(val)
}

/// Writes an evicted dirty value back (scattered random write).
fn write_back<P: VertexProgram>(w: &Worker<P>, v: VertexId, value: &P::Value) -> io::Result<()> {
    w.values.write_one(v, value)?;
    w.vfs
        .stats()
        .record(AccessClass::RandWrite, seek_pad(P::Value::BYTES as u64));
    Ok(())
}

/// Serves one gather request: read `v`'s local in-edge fragment, then each
/// responding source's value, generating messages.
fn serve_gather<P: VertexProgram>(
    w: &mut Worker<P>,
    v: VertexId,
    from: WorkerId,
    gbufs: &mut [Vec<(VertexId, P::Message)>],
    per_flush: usize,
    rep: &mut StepReport,
) -> io::Result<()> {
    let in_edges = w
        .gather
        .as_ref()
        .expect("pull needs the gather store")
        .in_edges_of(v)?;
    let program = Arc::clone(&w.program);
    for ie in in_edges {
        let local = w.local(ie.src);
        if !w.respond.get(local) {
            continue;
        }
        let val = cached_value(w, ie.src, rep)?;
        let outd = w.out_degrees[local];
        let edge = Edge::weighted(v, ie.weight);
        if let Some(m) = program.message(ie.src, &val, outd, &edge) {
            rep.messages_produced += 1;
            let buf = &mut gbufs[from.index()];
            buf.push((v, m));
            if buf.len() >= per_flush {
                let batch = std::mem::take(buf);
                flush_gather_batch(w, from, batch);
            }
        }
    }
    Ok(())
}

/// Encodes and sends a gather-response batch (combined or concatenated).
fn flush_gather_batch<P: VertexProgram>(
    w: &Worker<P>,
    to: WorkerId,
    mut batch: Vec<(VertexId, P::Message)>,
) {
    if batch.is_empty() {
        return;
    }
    let kind = w.batch_kind();
    let combiner = if kind == BatchKind::Combined {
        w.program.combiner()
    } else {
        None
    };
    let (payload, stats) = encode_batch(kind, &mut batch, combiner);
    w.ep.send(
        to,
        Packet::Messages {
            kind,
            payload: payload.into(),
            stats,
            for_block: None,
        },
    );
}

/// Applies the superstep's gathered messages through the LRU cache.
fn update_cached<P: VertexProgram>(
    w: &mut Worker<P>,
    rep: &mut StepReport,
    superstep: u64,
    inbox: MsgAccumulator<P::Message>,
) -> io::Result<()> {
    let program = Arc::clone(&w.program);
    let info = w.info;
    let track_residual = program.tolerance().is_some();
    for (vg, msgs) in inbox.into_groups() {
        let v = VertexId(vg);
        let current = cached_value(w, v, rep)?;
        let upd = program.update(v, &info, superstep, &current, &msgs);
        if track_residual {
            rep.max_residual = rep.max_residual.max(program.residual(&current, &upd.value));
        }
        rep.updated += 1;
        rep.messages_consumed += msgs.len() as u64;
        if upd.respond {
            let local = w.local(v);
            w.respond_next.set(local);
        }
        let evicted = w.lru.as_mut().unwrap().insert_weighted(
            vg,
            upd.value,
            true,
            Worker::<P>::lru_entry_weight(),
        );
        for (k, old, dirty) in evicted {
            if dirty {
                write_back(w, VertexId(k), &old)?;
            }
        }
    }
    Ok(())
}
