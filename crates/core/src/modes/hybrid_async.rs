//! GraphHP-style hybrid sync/async supersteps.
//!
//! One async superstep keeps the BSP shell of push — `load()` the inbox,
//! update, exchange at the barrier — but inserts block-local
//! **pseudo-rounds** between the sweep and the exchange: interior
//! vertices (every edge inside their own Vblock, see
//! [`crate::blockexec`]) have their inboxes *regenerated in memory* from
//! in-block neighbors' current values and are updated again, block by
//! block, until the block's per-round residual drops to
//! [`async_residual`](crate::config::JobConfig::async_residual) or
//! [`async_max_rounds`](crate::config::JobConfig::async_max_rounds) is
//! hit. Each extra round is progress a strict-BSP run would have paid a
//! global barrier (plus a full value reload and a message exchange) for.
//!
//! Boundary vertices keep strict semantics: they update once in the
//! sweep, and their messages queue for the barrier exactly as in push.
//! A responding vertex's messages to **interior** destinations are never
//! sent — regeneration absorbs them (interior vertices' in-edges are all
//! in-block by definition, so nothing is lost); with `send_all`
//! (the async → push switch superstep) every destination is sent so the
//! next strict superstep sees a complete inbox.
//!
//! Sender liveness follows the responding flag as a *standing* state: a
//! vertex contributes to regenerated inboxes iff its most recent update
//! (this superstep, or last superstep via the checkpointed `respond`
//! vector) responded. Regeneration always rebuilds a vertex's **whole**
//! inbox from live in-block senders — never a delta — so overwrite-style
//! programs (PageRank's `(1-d)/N + d·Σ`) stay correct. Everything is
//! iterated in canonical block-then-vertex order, so same-seed runs are
//! byte-identical.

use super::push::{drain_inbox, sink_message};
use super::send_plain;
use crate::metrics::StepReport;
use crate::program::VertexProgram;
use crate::worker::Worker;
use hybridgraph_graph::{VertexId, WorkerId};
use hybridgraph_net::flow::ThresholdBuffer;
use hybridgraph_net::packet::Packet;
use hybridgraph_net::wire::{decode_batch, BatchKind};
use hybridgraph_storage::{AccessClass, Record};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Runs one async superstep.
///
/// * `send_all` — send to **every** destination instead of boundary-only
///   (the async → push switch superstep, [`StepKind::AsyncThenPush`]
///   (crate::metrics::StepKind::AsyncThenPush)).
pub fn run_async_step<P: VertexProgram>(
    w: &mut Worker<P>,
    superstep: u64,
    send_all: bool,
) -> io::Result<StepReport> {
    let t0 = Instant::now();
    w.begin_superstep(superstep);
    let mut rep = StepReport::default();
    let mut blocking = 0.0;
    let program = Arc::clone(&w.program);
    let info = w.info;
    let workers = w.cfg.workers;
    let residual_cut = w.cfg.async_residual;
    let max_rounds = w.cfg.async_max_rounds;
    let base = w.range.start;

    // load(): the messages received at the previous barrier.
    let work: Vec<(u32, Vec<P::Message>)> = if superstep == 1 {
        w.range
            .clone()
            .filter(|&v| program.initially_active(VertexId(v), &info))
            .map(|v| (v, Vec::new()))
            .collect()
    } else {
        drain_inbox(w, &mut rep)?
    };
    w.trace_phase("load");

    let cls = Arc::clone(w.cls.as_ref().expect("async mode requires classification"));
    let index = w
        .interior
        .take()
        .expect("async mode requires interior index");

    // Standing sender-liveness: last superstep's responders, updated as
    // vertices recompute this superstep.
    let mut live = w.respond.clone();
    let mut touched = crate::bitset::BitSet::new(w.range.len());

    let mut tbuf: ThresholdBuffer<P::Message> =
        ThresholdBuffer::new(workers, w.cfg.sending_threshold);
    let mut max_extra_rounds = 0u64;
    // `(block index, round, updates, regenerated messages)` per executed
    // pseudo-round, emitted to the trace after the superstep's spans.
    let mut round_trace: Vec<(usize, u64, u64, u64)> = Vec::new();

    let mut wi = 0usize;
    let result = (|| -> io::Result<()> {
        for (bi, ib) in index.blocks.iter().enumerate() {
            let br = ib.range.clone();
            if br.is_empty() {
                continue;
            }
            let block_bytes = br.len() as u64 * P::Value::BYTES as u64;
            let mut vals = w.values.read_range(br.clone())?;
            w.note_value_preimage(br.start, &vals);
            rep.sem.value_update_bytes += block_bytes;

            // Sweep: apply the real inbox (strict semantics, boundary and
            // interior destinations alike).
            while wi < work.len() && work[wi].0 < br.end {
                let (v, msgs) = &work[wi];
                wi += 1;
                debug_assert!(br.contains(v));
                let idx = (v - br.start) as usize;
                let upd = program.update(VertexId(*v), &info, superstep, &vals[idx], msgs);
                let residual = program.residual(&vals[idx], &upd.value);
                rep.max_residual = rep.max_residual.max(residual);
                rep.updated += 1;
                rep.messages_consumed += msgs.len() as u64;
                let local = (v - base) as usize;
                touched.set(local);
                if upd.respond {
                    live.set(local);
                    w.respond_next.set(local);
                } else {
                    live.clear(local);
                    w.respond_next.clear(local);
                }
                if cls.is_boundary(*v) {
                    rep.asy.boundary_active += 1;
                } else {
                    rep.asy.interior_active += 1;
                }
                vals[idx] = upd.value;
            }

            // Pseudo-rounds: regenerate interior inboxes in memory and
            // iterate until the block's residual settles.
            let mut extra_rounds = 0u64;
            if !ib.interior.is_empty() && max_rounds > 0 {
                // Round 1 visits every interior vertex (the inbox left by
                // an arbitrary previous mode is consumed by the sweep;
                // regeneration re-derives the in-block part from current
                // values). Later rounds visit only dirtied vertices.
                let mut dirty: Vec<u32> = (0..ib.interior.len() as u32).collect();
                let mut dirty_mark = vec![false; ib.interior.len()];
                let mut inbox: Vec<P::Message> = Vec::new();
                let mut block_active = false;
                for round in 1..=max_rounds {
                    let mut round_updates = 0u64;
                    let mut round_msgs = 0u64;
                    let mut round_max = 0.0f64;
                    let mut changed: Vec<u32> = Vec::new();
                    for &p in &dirty {
                        let v = ib.interior[p as usize];
                        inbox.clear();
                        let (s, e) = (
                            ib.rev_offsets[p as usize] as usize,
                            ib.rev_offsets[p as usize + 1] as usize,
                        );
                        for (src, edge) in &ib.rev[s..e] {
                            let slocal = (*src - base) as usize;
                            if live.get(slocal) {
                                let sval = &vals[(*src - br.start) as usize];
                                if let Some(m) = program.message(
                                    VertexId(*src),
                                    sval,
                                    w.out_degrees[slocal],
                                    edge,
                                ) {
                                    inbox.push(m);
                                }
                            }
                        }
                        // No live in-block sender: under strict semantics
                        // the vertex would not compute — skip it.
                        if inbox.is_empty() {
                            continue;
                        }
                        let idx = (v - br.start) as usize;
                        let upd = program.update(
                            VertexId(v),
                            &info,
                            superstep + round,
                            &vals[idx],
                            &inbox,
                        );
                        let residual = program.residual(&vals[idx], &upd.value);
                        round_max = round_max.max(residual);
                        rep.max_residual = rep.max_residual.max(residual);
                        round_updates += 1;
                        round_msgs += inbox.len() as u64;
                        rep.asy.interior_updates += 1;
                        rep.asy.interior_messages += inbox.len() as u64;
                        rep.asy.interior_msg_bytes += inbox.len() as u64 * P::Message::BYTES as u64;
                        let local = (v - base) as usize;
                        let was_live = live.get(local);
                        touched.set(local);
                        if upd.respond {
                            live.set(local);
                            w.respond_next.set(local);
                        } else {
                            live.clear(local);
                            w.respond_next.clear(local);
                        }
                        if residual != 0.0 || was_live != upd.respond {
                            changed.push(p);
                        }
                        vals[idx] = upd.value;
                    }
                    if round_updates == 0 {
                        break;
                    }
                    extra_rounds = round;
                    block_active = true;
                    round_trace.push((bi, round, round_updates, round_msgs));
                    if round_max <= residual_cut {
                        rep.asy.blocks_converged += 1;
                        break;
                    }
                    // Dirty propagation: in-block interior destinations of
                    // every vertex whose value or liveness changed.
                    dirty_mark.iter_mut().for_each(|d| *d = false);
                    for &p in &changed {
                        let j = (ib.interior[p as usize] - br.start) as usize;
                        let (fs, fe) = (ib.fwd_offsets[j] as usize, ib.fwd_offsets[j + 1] as usize);
                        for &q in &ib.fwd[fs..fe] {
                            dirty_mark[q as usize] = true;
                        }
                    }
                    dirty = (0..ib.interior.len() as u32)
                        .filter(|&q| dirty_mark[q as usize])
                        .collect();
                    if dirty.is_empty() {
                        break;
                    }
                }
                if block_active {
                    rep.asy.blocks_active += 1;
                }
            }
            max_extra_rounds = max_extra_rounds.max(extra_rounds);

            // pushRes() from final values: every vertex that updated this
            // superstep and is finally responding sends — to boundary
            // destinations only, unless this is the async → push switch.
            for i in (br.start - base) as usize..(br.end - base) as usize {
                if !(touched.get(i) && live.get(i)) {
                    continue;
                }
                let v = VertexId(base + i as u32);
                let edges = w.read_out_edges(v, AccessClass::SeqRead, &mut rep)?;
                let outd = w.out_degrees[i];
                let idx = (v.0 - br.start) as usize;
                for e in edges.iter() {
                    if !send_all && !cls.is_boundary(e.dst.0) {
                        continue;
                    }
                    if let Some(m) = program.message(v, &vals[idx], outd, e) {
                        rep.messages_produced += 1;
                        let peer = w.partition.worker_of(e.dst);
                        if let Some(batch) = tbuf.push(peer, e.dst, m) {
                            send_plain(w, peer, batch);
                        }
                    }
                }
            }

            let mem = tbuf.memory_bytes() + block_bytes + index.memory_bytes();
            w.note_memory(mem + w.standing_memory_bytes());
            rep.sem.value_update_bytes += block_bytes;
            w.values.write_range(br.clone(), &vals)?;
        }
        Ok(())
    })();
    w.interior = Some(index);
    result?;
    rep.asy.pseudo_rounds = 1 + max_extra_rounds;
    w.trace_phase(if send_all {
        "sweep+rounds+pushAll"
    } else {
        "sweep+rounds+pushRes"
    });

    // Exchange phase (identical to push).
    for (peer, batch) in tbuf.flush_all() {
        send_plain(w, peer, batch);
    }
    for p in 0..workers {
        w.ep.send(WorkerId::from(p), Packet::DoneSending);
    }
    let mut done = 0usize;
    let spill_before = w
        .spill
        .as_ref()
        .map(|s| s.spilled_bytes())
        .unwrap_or_default();
    // Staged per sender, sunk in worker-id order — keeps the spill
    // file's content (and so its coded frames) deterministic; see the
    // push executor's exchange phase.
    let mut inbound: Vec<Vec<(VertexId, P::Message)>> = (0..workers).map(|_| Vec::new()).collect();
    while done < workers {
        let env = w.recv_timed(&mut blocking);
        match env.packet {
            Packet::Messages { kind, payload, .. } => {
                debug_assert_ne!(kind, BatchKind::Concatenated, "async never concatenates");
                inbound[env.from.index()].extend(decode_batch::<P::Message>(kind, &payload));
            }
            Packet::DoneSending => done += 1,
            Packet::Abort => return Err(super::abort_error()),
            other => unreachable!("unexpected packet in async step: {other:?}"),
        }
    }
    for pairs in inbound {
        for (dst, m) in pairs {
            sink_message(w, dst, m, false)?;
        }
    }
    let spill_after = w
        .spill
        .as_ref()
        .map(|s| s.spilled_bytes())
        .unwrap_or_default();
    rep.sem.msg_spill_bytes += spill_after - spill_before;
    w.trace_phase("exchange");

    w.finish_superstep(&mut rep);
    // One instant per executed pseudo-round, after the phase spans: the
    // per-pseudo-superstep view the graphhp experiment plots. Timestamps
    // are modeled (the shard clock emit_phase_trace left), so traces stay
    // bit-reproducible.
    if let (Some(shard), false) = (w.shard.clone(), w.replay) {
        let at = shard.clock_us();
        for (bi, round, updates, msgs) in round_trace {
            shard.instant_at(
                at,
                "async.round",
                vec![
                    ("superstep", superstep.into()),
                    ("block", (bi as u64).into()),
                    ("round", round.into()),
                    ("updates", updates.into()),
                    ("messages", msgs.into()),
                ],
            );
        }
    }
    rep.wall_secs = t0.elapsed().as_secs_f64();
    rep.blocking_secs = blocking;
    Ok(rep)
}
