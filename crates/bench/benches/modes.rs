//! End-to-end mode benchmarks: one full job per message-handling
//! strategy on a fixed livej stand-in (wall-clock of the engine itself,
//! complementing the modeled times the `repro` harness reports).

use criterion::{criterion_group, criterion_main, Criterion};
use hybridgraph_algos::{PageRank, Sssp};
use hybridgraph_core::{run_job, JobConfig, Mode};
use hybridgraph_graph::{Dataset, VertexId};
use std::sync::Arc;
use std::time::Duration;

fn bench_pagerank_modes(c: &mut Criterion) {
    let g = Dataset::LiveJ.build_scaled(4000);
    let mut group = c.benchmark_group("pagerank_livej");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for mode in Mode::ALL {
        group.bench_function(mode.label(), |b| {
            b.iter(|| {
                let cfg = JobConfig::new(mode, 4).with_buffer(125);
                run_job(Arc::new(PageRank::new(5)), &g, cfg).unwrap().values
            })
        });
    }
    group.finish();
}

fn bench_sssp_modes(c: &mut Criterion) {
    let g = Dataset::LiveJ.build_scaled(4000);
    let source = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap();
    let mut group = c.benchmark_group("sssp_livej");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for mode in [Mode::Push, Mode::PushM, Mode::BPull, Mode::Hybrid] {
        group.bench_function(mode.label(), |b| {
            b.iter(|| {
                let cfg = JobConfig::new(mode, 4).with_buffer(125);
                run_job(Arc::new(Sssp::new(source)), &g, cfg).unwrap().values
            })
        });
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let g = Dataset::LiveJ.build_scaled(4000);
    let mut group = c.benchmark_group("hybrid_workers");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("T{workers}"), |b| {
            b.iter(|| {
                let cfg = JobConfig::new(Mode::Hybrid, workers).with_buffer(125);
                run_job(Arc::new(PageRank::new(5)), &g, cfg).unwrap().values
            })
        });
    }
    group.finish();
}

fn bench_vertex_id(c: &mut Criterion) {
    let ids: Vec<VertexId> = (0..1000).map(VertexId).collect();
    c.bench_function("partition_worker_of", |b| {
        let p = hybridgraph_graph::Partition::range(1000, 7);
        b.iter(|| {
            let mut acc = 0usize;
            for &v in &ids {
                acc += p.worker_of(v).index();
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_pagerank_modes,
    bench_sssp_modes,
    bench_worker_scaling,
    bench_vertex_id
);
criterion_main!(benches);
