//! End-to-end mode benchmarks: one full job per message-handling
//! strategy on a fixed livej stand-in (wall-clock of the engine itself,
//! complementing the modeled times the `repro` harness reports).
//!
//! Plain `main()` harness (`harness = false`): the workspace builds
//! offline with no external crates, so instead of criterion each case is
//! timed with `std::time::Instant` over a fixed warmup + measurement loop.

use hybridgraph_algos::{PageRank, Sssp};
use hybridgraph_core::{run_job, JobConfig, Mode};
use hybridgraph_graph::{Dataset, VertexId};
use std::hint::black_box;
use std::time::Instant;

fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    black_box(f());
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed().as_millis() < 1000 || iters < 3 {
        black_box(f());
        iters += 1;
    }
    let ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    println!("{group}/{name}: {ms:>10.2} ms/iter ({iters} iters)");
}

fn bench_pagerank_modes() {
    let g = Dataset::LiveJ.build_scaled(4000);
    for mode in Mode::ALL {
        bench("pagerank_livej", mode.label(), || {
            let cfg = JobConfig::new(mode, 4).with_buffer(125);
            run_job(std::sync::Arc::new(PageRank::new(5)), &g, cfg)
                .unwrap()
                .values
        });
    }
}

fn bench_sssp_modes() {
    let g = Dataset::LiveJ.build_scaled(4000);
    let source = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap();
    for mode in [Mode::Push, Mode::PushM, Mode::BPull, Mode::Hybrid] {
        bench("sssp_livej", mode.label(), || {
            let cfg = JobConfig::new(mode, 4).with_buffer(125);
            run_job(std::sync::Arc::new(Sssp::new(source)), &g, cfg)
                .unwrap()
                .values
        });
    }
}

fn bench_worker_scaling() {
    let g = Dataset::LiveJ.build_scaled(4000);
    for workers in [1usize, 2, 4, 8] {
        bench("hybrid_workers", &format!("T{workers}"), || {
            let cfg = JobConfig::new(Mode::Hybrid, workers).with_buffer(125);
            run_job(std::sync::Arc::new(PageRank::new(5)), &g, cfg)
                .unwrap()
                .values
        });
    }
}

fn bench_vertex_id() {
    let ids: Vec<VertexId> = (0..1000).map(VertexId).collect();
    let p = hybridgraph_graph::Partition::range(1000, 7);
    bench("partition", "worker_of", || {
        let mut acc = 0usize;
        for &v in &ids {
            acc += p.worker_of(v).index();
        }
        acc
    });
}

fn main() {
    bench_pagerank_modes();
    bench_sssp_modes();
    bench_worker_scaling();
    bench_vertex_id();
}
