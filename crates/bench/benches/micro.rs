//! Microbenchmarks of the storage and wire substrates: the build cost of
//! the two on-disk layouts (Fig. 16's subject), the Pull-Respond scan
//! path, batch encodings, and the receive-side stores.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hybridgraph_graph::{gen, BlockLayout, Partition, VertexId, WorkerId};
use hybridgraph_net::combine::SumCombiner;
use hybridgraph_net::wire::{encode_batch, BatchKind};
use hybridgraph_storage::adjacency::AdjacencyStore;
use hybridgraph_storage::lru::LruCache;
use hybridgraph_storage::msg_store::SpillBuffer;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::MemVfs;

fn bench_store_builds(c: &mut Criterion) {
    let g = gen::rmat(20_000, 280_000, gen::RmatParams::default(), 7);
    let p = Partition::range(g.num_vertices(), 5);
    let layout = BlockLayout::uniform(&p, 14);
    let mut group = c.benchmark_group("store_build");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("adjacency", |b| {
        b.iter(|| {
            let vfs = MemVfs::new();
            for w in p.workers() {
                AdjacencyStore::build(&vfs, "adj", &g, p.worker_range(w)).unwrap();
            }
        })
    });
    group.bench_function("veblock", |b| {
        b.iter(|| {
            let vfs = MemVfs::new();
            for w in 0..5 {
                VeBlockStore::build(&vfs, &g, &layout, WorkerId::from(w)).unwrap();
            }
        })
    });
    group.finish();
}

fn bench_respond_scan(c: &mut Criterion) {
    let g = gen::rmat(20_000, 280_000, gen::RmatParams::default(), 7);
    let p = Partition::range(g.num_vertices(), 5);
    let layout = BlockLayout::uniform(&p, 14);
    let vfs = MemVfs::new();
    let store = VeBlockStore::build(&vfs, &g, &layout, WorkerId(0)).unwrap();
    let blocks: Vec<_> = layout.blocks_of_worker(WorkerId(0)).collect();
    let mut group = c.benchmark_group("respond_scan");
    group.bench_function("scan_all_eblocks", |b| {
        b.iter(|| {
            let mut frags = 0usize;
            for &j in &blocks {
                for i in layout.block_ids() {
                    frags += store.scan_eblock(j, i).unwrap().len();
                }
            }
            frags
        })
    });
    group.finish();
}

fn bench_wire_encodings(c: &mut Criterion) {
    let msgs: Vec<(VertexId, f64)> = (0..100_000u32)
        .map(|i| (VertexId(i % 5_000), i as f64))
        .collect();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(msgs.len() as u64));
    for (name, kind) in [
        ("plain", BatchKind::Plain),
        ("concatenated", BatchKind::Concatenated),
        ("combined", BatchKind::Combined),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || msgs.clone(),
                |mut batch| {
                    let combiner = (kind == BatchKind::Combined).then_some(&SumCombiner as _);
                    encode_batch(kind, &mut batch, combiner)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_spill_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("spill_buffer");
    group.throughput(Throughput::Elements(100_000));
    for (name, capacity) in [("in_memory", usize::MAX), ("all_spilled", 0)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let vfs = MemVfs::new();
                let mut buf: SpillBuffer<f64> = SpillBuffer::new(&vfs, "s", capacity).unwrap();
                for i in 0..100_000u32 {
                    buf.push(VertexId(i % 10_000), i as f64).unwrap();
                }
                buf.drain().unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("churn_90pct_hit", |b| {
        b.iter(|| {
            let mut lru: LruCache<u32, f64> = LruCache::new(1_000);
            let mut evictions = 0usize;
            for i in 0..100_000u32 {
                // 90% of accesses in a hot window, 10% cold.
                let key = if i % 10 == 0 { i % 50_000 } else { i % 900 };
                if lru.get(&key).is_none() && lru.insert(key, key as f64, false).is_some() {
                    evictions += 1;
                }
            }
            evictions
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store_builds,
    bench_respond_scan,
    bench_wire_encodings,
    bench_spill_buffer,
    bench_lru
);
criterion_main!(benches);
