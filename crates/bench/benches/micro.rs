//! Microbenchmarks of the storage and wire substrates: the build cost of
//! the two on-disk layouts (Fig. 16's subject), the Pull-Respond scan
//! path, batch encodings, and the receive-side stores.
//!
//! Plain `main()` harness (`harness = false`): the workspace builds
//! offline with no external crates, so instead of criterion each case is
//! timed with `std::time::Instant` over a fixed warmup + measurement loop
//! and reported as ns/iter plus derived throughput.

use hybridgraph_graph::{gen, BlockLayout, Partition, VertexId, WorkerId};
use hybridgraph_net::combine::SumCombiner;
use hybridgraph_net::wire::{encode_batch, BatchKind};
use hybridgraph_storage::adjacency::AdjacencyStore;
use hybridgraph_storage::lru::LruCache;
use hybridgraph_storage::msg_store::SpillBuffer;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::MemVfs;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` (warmup 2 iters, then enough iters to pass ~0.5 s) and prints
/// a criterion-like line. Returns ns/iter.
fn bench<R>(group: &str, name: &str, elements: Option<u64>, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..2 {
        black_box(f());
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed().as_millis() < 500 || iters < 5 {
        black_box(f());
        iters += 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    match elements {
        Some(e) => {
            let meps = e as f64 / ns * 1000.0;
            println!("{group}/{name}: {ns:>12.0} ns/iter   {meps:>8.2} Melem/s");
        }
        None => println!("{group}/{name}: {ns:>12.0} ns/iter"),
    }
    ns
}

fn bench_store_builds() {
    let g = gen::rmat(20_000, 280_000, gen::RmatParams::default(), 7);
    let p = Partition::range(g.num_vertices(), 5);
    let layout = BlockLayout::uniform(&p, 14);
    let m = g.num_edges() as u64;
    bench("store_build", "adjacency", Some(m), || {
        let vfs = MemVfs::new();
        for w in p.workers() {
            AdjacencyStore::build(&vfs, "adj", &g, p.worker_range(w)).unwrap();
        }
    });
    bench("store_build", "veblock", Some(m), || {
        let vfs = MemVfs::new();
        for w in 0..5 {
            VeBlockStore::build(&vfs, &g, &layout, WorkerId::from(w)).unwrap();
        }
    });
}

fn bench_respond_scan() {
    let g = gen::rmat(20_000, 280_000, gen::RmatParams::default(), 7);
    let p = Partition::range(g.num_vertices(), 5);
    let layout = BlockLayout::uniform(&p, 14);
    let vfs = MemVfs::new();
    let store = VeBlockStore::build(&vfs, &g, &layout, WorkerId(0)).unwrap();
    let blocks: Vec<_> = layout.blocks_of_worker(WorkerId(0)).collect();
    bench("respond_scan", "scan_all_eblocks", None, || {
        let mut frags = 0usize;
        for &j in &blocks {
            for i in layout.block_ids() {
                frags += store.scan_eblock(j, i).unwrap().len();
            }
        }
        frags
    });
}

fn bench_wire_encodings() {
    let msgs: Vec<(VertexId, f64)> = (0..100_000u32)
        .map(|i| (VertexId(i % 5_000), i as f64))
        .collect();
    let n = msgs.len() as u64;
    for (name, kind) in [
        ("plain", BatchKind::Plain),
        ("concatenated", BatchKind::Concatenated),
        ("combined", BatchKind::Combined),
    ] {
        bench("wire", name, Some(n), || {
            let mut batch = msgs.clone();
            let combiner = (kind == BatchKind::Combined).then_some(&SumCombiner as _);
            encode_batch(kind, &mut batch, combiner)
        });
    }
}

fn bench_spill_buffer() {
    for (name, capacity) in [("in_memory", usize::MAX), ("all_spilled", 0)] {
        bench("spill_buffer", name, Some(100_000), || {
            let vfs = MemVfs::new();
            let mut buf: SpillBuffer<f64> = SpillBuffer::new(&vfs, "s", capacity).unwrap();
            for i in 0..100_000u32 {
                buf.push(VertexId(i % 10_000), i as f64).unwrap();
            }
            buf.drain().unwrap().len()
        });
    }
}

fn bench_lru() {
    bench("lru", "churn_90pct_hit", Some(100_000), || {
        let mut lru: LruCache<u32, f64> = LruCache::new(1_000);
        let mut evictions = 0usize;
        for i in 0..100_000u32 {
            // 90% of accesses in a hot window, 10% cold.
            let key = if i % 10 == 0 { i % 50_000 } else { i % 900 };
            if lru.get(&key).is_none() && lru.insert(key, key as f64, false).is_some() {
                evictions += 1;
            }
        }
        evictions
    });
}

fn main() {
    bench_store_builds();
    bench_respond_scan();
    bench_wire_encodings();
    bench_spill_buffer();
    bench_lru();
}
