//! Machine-readable experiment reports: `BENCH_<experiment>.json`.
//!
//! The repro harness prints human-readable tables; this module emits the
//! same headline numbers as JSON so downstream tooling (CI diffs,
//! plotting scripts) can consume a run without scraping stdout. One
//! report per experiment, one row per measured job: modeled and wall
//! seconds, physical and logical I/O bytes, superstep count, and the
//! mode-switch decisions (`"t:from->to"`). Hand-rolled serialization —
//! the workspace is deliberately dependency-free.
//!
//! Modeled quantities and switch decisions are deterministic; wall
//! seconds are the one timing-driven field (reported for orientation,
//! never compared).

pub mod diff;

use hybridgraph_core::JobMetrics;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One measured job inside a report.
pub struct BenchRow {
    /// Row label (e.g. `"solo"`, `"2-jobs/job0"`).
    pub label: String,
    /// Modeled seconds, load included.
    pub modeled_secs: f64,
    /// Wall-clock seconds (non-deterministic; orientation only).
    pub wall_secs: f64,
    /// Physical bytes moved (post-codec, seek-padded).
    pub physical_bytes: u64,
    /// Logical bytes requested (pre-codec).
    pub logical_bytes: u64,
    /// Computation supersteps executed.
    pub supersteps: u64,
    /// Mode switches as `"t:from->to"`, superstep order.
    pub switch_decisions: Vec<String>,
    /// Experiment-specific numeric extras (cache hits, evictions, ...).
    pub extra: Vec<(String, f64)>,
}

impl BenchRow {
    /// A row from one job's metrics.
    pub fn from_metrics(label: impl Into<String>, m: &JobMetrics) -> BenchRow {
        BenchRow {
            label: label.into(),
            modeled_secs: m.modeled_total_secs(),
            wall_secs: m.wall_total_secs(),
            physical_bytes: m.total_io_bytes(),
            logical_bytes: m.total_io_logical_bytes(),
            supersteps: m.supersteps(),
            switch_decisions: m
                .switches
                .iter()
                .map(|(t, from, to)| format!("{t}:{}->{}", from.label(), to.label()))
                .collect(),
            extra: Vec::new(),
        }
    }

    /// A row with the wall clock zeroed: every remaining field is
    /// modeled and deterministic, so a report built only from these rows
    /// is byte-identical run to run and CI can diff the committed copy.
    pub fn deterministic(label: impl Into<String>, m: &JobMetrics) -> BenchRow {
        let mut row = BenchRow::from_metrics(label, m);
        row.wall_secs = 0.0;
        row
    }

    /// Attaches a numeric extra.
    pub fn with_extra(mut self, key: impl Into<String>, value: f64) -> BenchRow {
        self.extra.push((key.into(), value));
        self
    }
}

/// A full experiment report, serialized to `BENCH_<experiment>.json`.
pub struct BenchReport {
    /// Experiment name (the `repro` dispatch key).
    pub experiment: String,
    /// Dataset scale denominator of the run.
    pub scale: usize,
    /// One row per measured job.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for `experiment` at `scale`.
    pub fn new(experiment: impl Into<String>, scale: usize) -> BenchReport {
        BenchReport {
            experiment: experiment.into(),
            scale,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"experiment\": {},", json_str(&self.experiment));
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"label\": {},", json_str(&r.label));
            let _ = writeln!(out, "      \"modeled_secs\": {},", json_num(r.modeled_secs));
            let _ = writeln!(out, "      \"wall_secs\": {},", json_num(r.wall_secs));
            let _ = writeln!(out, "      \"physical_bytes\": {},", r.physical_bytes);
            let _ = writeln!(out, "      \"logical_bytes\": {},", r.logical_bytes);
            let _ = writeln!(out, "      \"supersteps\": {},", r.supersteps);
            let decisions: Vec<String> = r.switch_decisions.iter().map(|d| json_str(d)).collect();
            let _ = writeln!(
                out,
                "      \"switch_decisions\": [{}],",
                decisions.join(", ")
            );
            out.push_str("      \"extra\": {");
            for (j, (k, v)) in r.extra.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_str(k), json_num(*v));
            }
            out.push_str("}\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes `BENCH_<experiment>.json` into the current directory and
    /// returns the path.
    pub fn write(&self) -> PathBuf {
        let path = PathBuf::from(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json()).expect("write bench report");
        path
    }

    /// [`BenchReport::write`] plus the `report:  <path>` line every
    /// experiment prints as its tail.
    pub fn write_announced(&self) -> PathBuf {
        let path = self.write();
        println!("report:  {}", path.display());
        path
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite f64 as a JSON number (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_obs::validate_json;

    #[test]
    fn report_is_valid_json() {
        let mut rep = BenchReport::new("demo", 2000);
        rep.push(BenchRow {
            label: "a \"quoted\"\nlabel".to_string(),
            modeled_secs: 1.25,
            wall_secs: f64::NAN,
            physical_bytes: 10,
            logical_bytes: 20,
            supersteps: 3,
            switch_decisions: vec!["2:push->b-pull".to_string()],
            extra: vec![("cache_hits".to_string(), 7.0)],
        });
        let json = rep.to_json();
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"switch_decisions\": [\"2:push->b-pull\"]"));
        assert!(json.contains("\"wall_secs\": null"));
        assert!(json.contains("\"cache_hits\": 7.0"));
    }

    #[test]
    fn empty_report_is_valid() {
        let rep = BenchReport::new("empty", 1);
        validate_json(&rep.to_json()).expect("valid JSON");
    }
}
