//! The perf gate: diff a freshly generated `BENCH_*.json` against the
//! committed copy.
//!
//! Every compared quantity is *modeled* — modeled seconds and physical
//! I/O bytes are pure functions of the experiment's seeds — so a fresh
//! run should reproduce the committed numbers exactly. The gate still
//! allows a tolerance band (default ±10%) so intentional small shifts
//! from unrelated changes don't demand a lockstep report refresh; past
//! the band, the diff is a perf regression and CI fails.
//!
//! The parser is a minimal recursive-descent JSON reader (the workspace
//! is deliberately dependency-free) that understands the full JSON
//! grammar but only extracts the report fields the gate compares.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number (`null` reads as NaN — the report writes
    /// `null` for non-finite numbers).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document; trailing garbage is an error.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        // The report never emits surrogate pairs; map
                        // unpaired surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        expect(b, pos, b':')?;
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

/// One row's gated quantities, pulled out of a parsed report.
#[derive(Debug, Clone, PartialEq)]
pub struct GatedRow {
    /// The row label (the join key between committed and fresh).
    pub label: String,
    /// Modeled seconds (deterministic).
    pub modeled_secs: f64,
    /// Physical I/O bytes (deterministic).
    pub physical_bytes: f64,
}

/// A report reduced to what the gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct GatedReport {
    /// Experiment name.
    pub experiment: String,
    /// Rows in file order.
    pub rows: Vec<GatedRow>,
}

/// Parses a `BENCH_*.json` document down to its gated quantities.
pub fn parse_report(src: &str) -> Result<GatedReport, String> {
    let doc = parse_json(src)?;
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("report has no \"experiment\"")?
        .to_string();
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("report has no \"rows\" array".into()),
    };
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| {
            row.get(name)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("row {i} has no numeric \"{name}\""))
        };
        out.push(GatedRow {
            label: row
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row {i} has no \"label\""))?
                .to_string(),
            modeled_secs: field("modeled_secs")?,
            physical_bytes: field("physical_bytes")?,
        });
    }
    Ok(GatedReport {
        experiment,
        rows: out,
    })
}

/// The verdict of one committed-vs-fresh comparison.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    /// Gate failures: regressions past tolerance, vanished rows,
    /// mismatched experiments. Non-empty fails CI.
    pub regressions: Vec<String>,
    /// Informational: improvements past tolerance, new rows.
    pub notes: Vec<String>,
}

impl DiffOutcome {
    /// True when the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let _ = writeln!(out, "REGRESSION: {r}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }
}

/// Checks one metric of one row against the tolerance band.
fn gate_metric(
    out: &mut DiffOutcome,
    experiment: &str,
    label: &str,
    metric: &str,
    committed: f64,
    fresh: f64,
    tolerance: f64,
) {
    // Both zero (or both NaN wall-clock stand-ins) compare equal.
    if committed == fresh || (committed.is_nan() && fresh.is_nan()) {
        return;
    }
    let regressed = if committed == 0.0 {
        fresh > 0.0
    } else {
        fresh > committed * (1.0 + tolerance)
    };
    let improved = committed > 0.0 && fresh < committed * (1.0 - tolerance);
    let line = format!(
        "{experiment}/{label} {metric}: committed {committed}, fresh {fresh} ({:+.1}%)",
        if committed != 0.0 {
            100.0 * (fresh - committed) / committed
        } else {
            f64::INFINITY
        }
    );
    if regressed {
        out.regressions.push(line);
    } else if improved {
        out.notes.push(format!("{line} — improvement"));
    }
}

/// Diffs a fresh report against the committed one. `tolerance` is the
/// allowed fractional increase (0.10 = +10%) in modeled seconds or
/// physical bytes per row before the gate fails.
pub fn diff_reports(committed: &GatedReport, fresh: &GatedReport, tolerance: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if committed.experiment != fresh.experiment {
        out.regressions.push(format!(
            "experiment mismatch: committed '{}' vs fresh '{}'",
            committed.experiment, fresh.experiment
        ));
        return out;
    }
    for row in &committed.rows {
        let Some(f) = fresh.rows.iter().find(|r| r.label == row.label) else {
            out.regressions.push(format!(
                "{}/{}: row vanished from the fresh report",
                committed.experiment, row.label
            ));
            continue;
        };
        gate_metric(
            &mut out,
            &committed.experiment,
            &row.label,
            "modeled_secs",
            row.modeled_secs,
            f.modeled_secs,
            tolerance,
        );
        gate_metric(
            &mut out,
            &committed.experiment,
            &row.label,
            "physical_bytes",
            row.physical_bytes,
            f.physical_bytes,
            tolerance,
        );
    }
    for row in &fresh.rows {
        if !committed.rows.iter().any(|r| r.label == row.label) {
            out.notes.push(format!(
                "{}/{}: new row (not in the committed report)",
                fresh.experiment, row.label
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchReport, BenchRow};

    fn report(rows: &[(&str, f64, u64)]) -> GatedReport {
        let mut rep = BenchReport::new("demo", 2000);
        for (label, modeled, phys) in rows {
            rep.push(BenchRow {
                label: label.to_string(),
                modeled_secs: *modeled,
                wall_secs: 0.0,
                physical_bytes: *phys,
                logical_bytes: 0,
                supersteps: 1,
                switch_decisions: Vec::new(),
                extra: Vec::new(),
            });
        }
        parse_report(&rep.to_json()).expect("parse own report")
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(&[("solo", 1.5, 100), ("duo", 2.5, 200)]);
        let out = diff_reports(&a, &a.clone(), 0.10);
        assert!(out.passed(), "{}", out.render());
        assert!(out.notes.is_empty());
    }

    #[test]
    fn within_tolerance_passes_past_it_fails() {
        let committed = report(&[("solo", 1.0, 1000)]);
        let close = report(&[("solo", 1.09, 1000)]);
        assert!(diff_reports(&committed, &close, 0.10).passed());
        let slow = report(&[("solo", 1.11, 1000)]);
        let out = diff_reports(&committed, &slow, 0.10);
        assert!(!out.passed());
        assert!(out.regressions[0].contains("modeled_secs"), "{out:?}");
    }

    #[test]
    fn byte_regressions_and_vanished_rows_fail() {
        let committed = report(&[("solo", 1.0, 1000), ("duo", 1.0, 1000)]);
        let fresh = report(&[("solo", 1.0, 1200)]);
        let out = diff_reports(&committed, &fresh, 0.10);
        assert_eq!(out.regressions.len(), 2, "{}", out.render());
        assert!(out.render().contains("physical_bytes"));
        assert!(out.render().contains("vanished"));
    }

    #[test]
    fn improvements_and_new_rows_are_notes() {
        let committed = report(&[("solo", 2.0, 1000)]);
        let fresh = report(&[("solo", 1.0, 1000), ("extra", 1.0, 1)]);
        let out = diff_reports(&committed, &fresh, 0.10);
        assert!(out.passed(), "{}", out.render());
        assert_eq!(out.notes.len(), 2);
    }

    #[test]
    fn parser_round_trips_real_report_shapes() {
        let src = r#"{"experiment": "x", "scale": 1,
            "rows": [{"label": "a \"q\"\n", "modeled_secs": 1.5e-3,
                      "wall_secs": null, "physical_bytes": 7,
                      "logical_bytes": 0, "supersteps": 2,
                      "switch_decisions": ["1:push->b-pull"],
                      "extra": {"k": -1.0}}]}"#;
        let rep = parse_report(src).unwrap();
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.rows[0].label, "a \"q\"\n");
        assert!((rep.rows[0].modeled_secs - 0.0015).abs() < 1e-12);
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("[1, 2,]").is_err());
    }
}
