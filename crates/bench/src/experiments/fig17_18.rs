//! Fig. 17 — blocking (message-exchange) time per superstep for push,
//! pushM and b-pull, PageRank over `wiki` and `orkut`; and
//! Fig. 18 — network traffic of push vs b-pull with b-pull's combining
//! disabled (concatenation only), as a per-superstep in/out series.
//!
//! b-pull exchanges no messages in superstep 1 (its first superstep is
//! local initialization), which Fig. 17 notes.

use crate::table::{bytes, Table};
use crate::{run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;

/// Fig. 17 — modeled network (blocking) seconds per superstep.
pub fn fig17(scale: Scale) {
    for d in [Dataset::Wiki, Dataset::Orkut] {
        let g = scale.build(d);
        let mut t = Table::new(
            &format!(
                "Fig 17 — blocking time per superstep (PageRank over {})",
                d.name()
            ),
            &["superstep", "push (s)", "pushM (s)", "b-pull (s)"],
        );
        let runs: Vec<_> = [Mode::Push, Mode::PushM, Mode::BPull]
            .into_iter()
            .map(|mode| {
                let cfg = JobConfig::new(mode, workers_for(d));
                run_algo(Algo::PageRank, &g, cfg)
            })
            .collect();
        let len = runs.iter().map(|m| m.steps.len()).max().unwrap_or(0);
        for i in 0..len {
            let cell = |ri: usize| {
                runs[ri]
                    .steps
                    .get(i)
                    .map(|s| format!("{:.2}", scale.project_secs(s.modeled_net_secs)))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![(i + 1).to_string(), cell(0), cell(1), cell(2)]);
        }
        t.print();
    }
}

/// Fig. 18 — per-superstep network bytes, push vs b-pull
/// (b-pull combining disabled; concatenation alone still roughly halves
/// traffic by sharing destination ids).
pub fn fig18(scale: Scale) {
    for d in [Dataset::Wiki, Dataset::Orkut] {
        let g = scale.build(d);
        let push = run_algo(
            Algo::PageRank,
            &g,
            JobConfig::new(Mode::Push, workers_for(d)),
        );
        let mut cfg = JobConfig::new(Mode::BPull, workers_for(d));
        cfg.combining = false;
        let bpull = run_algo(Algo::PageRank, &g, cfg);
        let mut t = Table::new(
            &format!(
                "Fig 18 — network traffic per superstep (PageRank over {})",
                d.name()
            ),
            &["superstep", "push out", "b-pull out", "b-pull/push"],
        );
        let len = push.steps.len().max(bpull.steps.len());
        let mut tot_push = 0u64;
        let mut tot_bpull = 0u64;
        for i in 0..len {
            let p = push.steps.get(i).map(|s| s.net_out_bytes).unwrap_or(0);
            let b = bpull.steps.get(i).map(|s| s.net_out_bytes).unwrap_or(0);
            tot_push += p;
            tot_bpull += b;
            t.row(vec![
                (i + 1).to_string(),
                bytes(p),
                bytes(b),
                if p == 0 {
                    "-".into()
                } else {
                    format!("{:.2}", b as f64 / p as f64)
                },
            ]);
        }
        t.row(vec![
            "total".into(),
            bytes(tot_push),
            bytes(tot_bpull),
            format!("{:.2}", tot_bpull as f64 / tot_push.max(1) as f64),
        ]);
        t.print();
    }
}
