//! Diagnostic: the per-superstep switching trace of a hybrid run, next to
//! pure push and pure b-pull — what Fig. 14 condenses. Useful when
//! judging whether `Q_t`'s sign tracks the actually-cheaper mode.

use crate::table::{secs, Table};
use crate::{buffer_for, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;

/// Prints the hybrid trace for `algo` over `d`.
pub fn trace(algo: Algo, d: Dataset, scale: Scale) {
    let g = scale.build(d);
    let mk = |mode| JobConfig::new(mode, workers_for(d)).with_buffer(buffer_for(d, scale));
    let hybrid = run_algo(algo, &g, mk(Mode::Hybrid));
    let push = run_algo(algo, &g, mk(Mode::Push));
    let bpull = run_algo(algo, &g, mk(Mode::BPull));
    let mut t = Table::new(
        &format!("switch trace — {} over {}", algo.label(), d.name()),
        &[
            "t",
            "kind",
            "Q_t",
            "msgs",
            "spill B",
            "hy (s)",
            "push (s)",
            "b-pull (s)",
        ],
    );
    let len = hybrid
        .steps
        .len()
        .max(push.steps.len())
        .max(bpull.steps.len());
    for i in 0..len {
        let h = hybrid.steps.get(i);
        t.row(vec![
            (i + 1).to_string(),
            h.map(|s| s.kind.label().to_string()).unwrap_or("-".into()),
            h.map(|s| format!("{:+.2e}", s.q_metric))
                .unwrap_or("-".into()),
            h.map(|s| s.messages_produced.to_string())
                .unwrap_or("-".into()),
            h.map(|s| s.sem.msg_spill_bytes.to_string())
                .unwrap_or("-".into()),
            h.map(|s| secs(scale.project_secs(s.modeled_secs)))
                .unwrap_or("-".into()),
            push.steps
                .get(i)
                .map(|s| secs(scale.project_secs(s.modeled_secs)))
                .unwrap_or("-".into()),
            bpull
                .steps
                .get(i)
                .map(|s| secs(scale.project_secs(s.modeled_secs)))
                .unwrap_or("-".into()),
        ]);
    }
    t.print();
    println!(
        "hybrid switches: {:?}; totals: hybrid {:.0}s push {:.0}s b-pull {:.0}s\n",
        hybrid.switches,
        scale.project_secs(hybrid.modeled_total_secs()),
        scale.project_secs(push.modeled_total_secs()),
        scale.project_secs(bpull.modeled_total_secs()),
    );
}

/// SA and SSSP over twi — the cases Fig. 14 and §6.2 discuss.
pub fn run(scale: Scale) {
    trace(Algo::Sa, Dataset::Twi, scale);
    trace(Algo::Sssp, Dataset::Twi, scale);
}
