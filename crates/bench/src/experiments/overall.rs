//! Figs. 7–10 — the overall performance evaluation: all four algorithms,
//! all six datasets, all five strategies, under sufficient memory
//! (Fig. 7), limited memory on the HDD profile (Fig. 8) and on the SSD
//! profile (Fig. 9), plus the I/O byte totals of the limited-memory runs
//! (Fig. 10).
//!
//! Missing bars in the paper (`F` = unsuccessful run) are reproduced as
//! `F` cells: pull on the large graphs (the disk-extended GraphLab
//! analogue does not finish at that scale), and push/pull on `twi` under
//! sufficient memory (out-of-memory in the original evaluation).

use crate::table::{bytes, secs, Table};
use crate::{buffer_for, report_secs, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, JobMetrics, Mode};
use hybridgraph_graph::Dataset;
use hybridgraph_storage::DeviceProfile;

/// Which scenario a matrix run uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Fig. 7: everything fits in memory; local cluster.
    Sufficient,
    /// Figs. 8/10: limited memory, HDD profile.
    LimitedHdd,
    /// Fig. 9: limited memory, SSD profile.
    LimitedSsd,
}

impl Scenario {
    fn profile(self) -> DeviceProfile {
        match self {
            Scenario::Sufficient => DeviceProfile::memory(),
            Scenario::LimitedHdd => DeviceProfile::local_hdd(),
            Scenario::LimitedSsd => DeviceProfile::amazon_ssd(),
        }
    }

    fn datasets(self) -> &'static [Dataset] {
        match self {
            // Fig. 7 runs the small graphs plus twi.
            Scenario::Sufficient => &[Dataset::LiveJ, Dataset::Wiki, Dataset::Orkut, Dataset::Twi],
            _ => &Dataset::ALL,
        }
    }

    /// Reproduces the paper's `F` (unsuccessful-run) cells.
    fn failed(self, mode: Mode, d: Dataset) -> bool {
        match self {
            // Fig. 7: push and pull run out of memory on twi.
            Scenario::Sufficient => d == Dataset::Twi && matches!(mode, Mode::Push | Mode::Pull),
            // Figs. 8–10: pull does not finish on the large graphs.
            _ => Dataset::LARGE.contains(&d) && mode == Mode::Pull,
        }
    }
}

fn modes_for(algo: Algo) -> Vec<Mode> {
    if algo.combinable() {
        vec![
            Mode::Push,
            Mode::PushM,
            Mode::Pull,
            Mode::BPull,
            Mode::Hybrid,
        ]
    } else {
        vec![Mode::Push, Mode::Pull, Mode::BPull, Mode::Hybrid]
    }
}

/// Runs the full matrix for one scenario; returns metrics for reuse.
pub fn matrix(
    scenario: Scenario,
    scale: Scale,
    mut sink: impl FnMut(Algo, Dataset, Mode, &JobMetrics),
) {
    for algo in Algo::ALL {
        for &d in scenario.datasets() {
            let g = scale.build(d);
            for mode in modes_for(algo) {
                if scenario.failed(mode, d) {
                    continue;
                }
                let mut cfg = JobConfig::new(mode, workers_for(d)).with_profile(scenario.profile());
                if scenario != Scenario::Sufficient {
                    cfg = cfg.with_buffer(buffer_for(d, scale));
                }
                let m = run_algo(algo, &g, cfg);
                sink(algo, d, mode, &m);
            }
        }
    }
}

fn print_matrix(title: &str, scenario: Scenario, scale: Scale, io_bytes: bool) {
    for algo in Algo::ALL {
        let modes = modes_for(algo);
        let mut headers = vec!["graph"];
        headers.extend(modes.iter().map(|m| m.label()));
        let mut t = Table::new(&format!("{title} — {}", algo.label()), &headers);
        for &d in scenario.datasets() {
            let g = scale.build(d);
            let mut cells = vec![d.name().to_string()];
            for &mode in &modes {
                if scenario.failed(mode, d) {
                    cells.push("F".into());
                    continue;
                }
                let mut cfg = JobConfig::new(mode, workers_for(d)).with_profile(scenario.profile());
                if scenario != Scenario::Sufficient {
                    cfg = cfg.with_buffer(buffer_for(d, scale));
                }
                let m = run_algo(algo, &g, cfg);
                if io_bytes {
                    cells.push(bytes(m.total_io_bytes() * scale.0 as u64));
                } else {
                    cells.push(secs(report_secs(algo, &m, scale)));
                }
            }
            t.row(cells);
        }
        t.print();
    }
}

/// Fig. 7 — runtime, sufficient memory.
pub fn fig7(scale: Scale) {
    print_matrix(
        "Fig 7 — runtime (s, projected), sufficient memory",
        Scenario::Sufficient,
        scale,
        false,
    );
}

/// Fig. 8 — runtime, limited memory, HDD.
pub fn fig8(scale: Scale) {
    print_matrix(
        "Fig 8 — runtime (s, projected), limited memory, local HDD",
        Scenario::LimitedHdd,
        scale,
        false,
    );
}

/// Fig. 9 — runtime, limited memory, SSD.
pub fn fig9(scale: Scale) {
    print_matrix(
        "Fig 9 — runtime (s, projected), limited memory, amazon SSD",
        Scenario::LimitedSsd,
        scale,
        false,
    );
}

/// Fig. 10 — I/O bytes, limited memory, HDD (projected to paper scale).
pub fn fig10(scale: Scale) {
    print_matrix(
        "Fig 10 — I/O bytes (projected), limited memory, local HDD",
        Scenario::LimitedHdd,
        scale,
        true,
    );
}
