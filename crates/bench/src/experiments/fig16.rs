//! Fig. 16 — graph loading cost of the three storage layouts: `adj`
//! (push's adjacency list), `VE-BLOCK` (b-pull's layout, which must parse
//! adjacency lists into fragments and write auxiliary data), and
//! `adj+VE-BLOCK` (hybrid's double storage). Reported as ratios to `adj`,
//! like the paper's y-axis.

use crate::table::{ratio, Table};
use crate::{buffer_for, workers_for, Scale};
use hybridgraph_graph::{partition::vblock_counts, BlockLayout, Dataset, Partition, WorkerId};
use hybridgraph_storage::adjacency::AdjacencyStore;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::{MemVfs, Vfs};
use std::time::Instant;

struct LoadCost {
    wall_secs: f64,
    write_bytes: u64,
}

/// Bytes of the raw text input every layout must read and parse first
/// ("src dst" per edge, ~14 characters) — the common loading term the
/// paper's runtimes include.
fn raw_input_bytes(edges: usize) -> u64 {
    edges as u64 * 14
}

/// Modeled loading seconds: raw input scan + layout writes (HDD
/// sequential throughput) + the measured build CPU.
fn modeled_secs(raw: u64, c: &LoadCost) -> f64 {
    let p = hybridgraph_storage::DeviceProfile::local_hdd();
    p.seq_read_secs(raw) + p.seq_write_secs(c.write_bytes) + c.wall_secs
}

fn build_adj(d: Dataset, scale: Scale) -> LoadCost {
    let g = scale.build(d);
    let p = Partition::range(g.num_vertices(), workers_for(d));
    let vfs = MemVfs::new();
    let t = Instant::now();
    for w in p.workers() {
        AdjacencyStore::build(&vfs, &format!("adj{w}"), &g, p.worker_range(w)).unwrap();
    }
    LoadCost {
        wall_secs: t.elapsed().as_secs_f64(),
        write_bytes: vfs.stats().snapshot().seq_write_bytes,
    }
}

fn build_ve(d: Dataset, scale: Scale) -> LoadCost {
    let g = scale.build(d);
    let p = Partition::range(g.num_vertices(), workers_for(d));
    let counts = vblock_counts(&g, &p, buffer_for(d, scale), true);
    let layout = BlockLayout::new(&p, &counts);
    let vfs = MemVfs::new();
    let t = Instant::now();
    for w in 0..p.num_workers() {
        VeBlockStore::build(&vfs, &g, &layout, WorkerId::from(w)).unwrap();
    }
    LoadCost {
        wall_secs: t.elapsed().as_secs_f64(),
        write_bytes: vfs.stats().snapshot().seq_write_bytes,
    }
}

/// Prints Fig. 16 (a) runtime ratios and (b) written-byte ratios.
pub fn run(scale: Scale) {
    let mut rt = Table::new(
        "Fig 16(a) — loading runtime ratio vs adj",
        &["graph", "adj", "VE-BLOCK", "adj+VE-BLOCK"],
    );
    let mut iot = Table::new(
        "Fig 16(b) — loading write-byte ratio vs adj",
        &["graph", "adj", "VE-BLOCK", "adj+VE-BLOCK"],
    );
    for d in Dataset::ALL {
        let adj = build_adj(d, scale);
        let ve = build_ve(d, scale);
        let raw = raw_input_bytes(scale.build(d).num_edges());
        let adj_secs = modeled_secs(raw, &adj);
        let ve_secs = modeled_secs(raw, &ve);
        let both = LoadCost {
            wall_secs: adj.wall_secs + ve.wall_secs,
            write_bytes: adj.write_bytes + ve.write_bytes,
        };
        let both_secs = modeled_secs(raw, &both);
        let both_bytes = both.write_bytes;
        rt.row(vec![
            d.name().into(),
            "1.00".into(),
            ratio(ve_secs / adj_secs),
            ratio(both_secs / adj_secs),
        ]);
        iot.row(vec![
            d.name().into(),
            "1.00".into(),
            ratio(ve.write_bytes as f64 / adj.write_bytes as f64),
            ratio(both_bytes as f64 / adj.write_bytes as f64),
        ]);
    }
    rt.print();
    iot.print();
}
