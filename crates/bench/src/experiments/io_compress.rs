//! `io_compress` — the on-disk codec sweep.
//!
//! Runs hybrid PageRank on LiveJ under every [`CodecChoice`] and tabulates
//! logical vs physical classified I/O, the compression ratio, and modeled
//! runtime. Two invariants are checked and reported:
//!
//! * every codec produces bit-identical final vertex values (compression
//!   is transparent to computation), and
//! * `Gaps` cuts total physical bytes substantially below `None` while
//!   logical bytes stay equal — the cost model charges what the device
//!   actually moves, not what the application asked for, and
//! * `Bv` cuts physical bytes substantially below `Gaps` again — the
//!   WebGraph-class tier (bit-granular ids, intervals, references,
//!   block-coded blobs) is what the billion-edge path rides on.
//!
//! Every row is deterministic (modeled time, byte counts, switch
//! decisions), so the run also emits `BENCH_io_compress.json` via
//! [`BenchReport`] and CI diffs it against the committed copy.

use crate::report::{BenchReport, BenchRow};
use crate::table::{bytes, ratio, secs, Table};
use crate::{buffer_for, workers_for, Scale};
use hybridgraph_algos::PageRank;
use hybridgraph_core::{run_job, JobConfig, JobMetrics, Mode};
use hybridgraph_graph::Dataset;
use hybridgraph_storage::CodecChoice;
use std::sync::Arc;

fn run_with(codec: CodecChoice, scale: Scale) -> (Vec<u64>, JobMetrics) {
    let d = Dataset::LiveJ;
    // PageRank never reads edge weights, and the real LiveJournal graph is
    // unweighted — the stand-in's randomized weights exist for SSSP. Strip
    // them to unit so the sweep measures adjacency-structure compression
    // (both codecs collapse a constant weight column) instead of drowning
    // the id stream in ~25 bits/edge of incompressible float entropy.
    let g = hybridgraph_graph::gen::randomize_weights(&scale.build(d), 1.0, 1.0, 0);
    let cfg = JobConfig::new(Mode::Hybrid, workers_for(d))
        .with_buffer(buffer_for(d, scale))
        .with_codec(codec);
    let r = run_job(Arc::new(PageRank::new(5)), &g, cfg).expect("job failed");
    let bits = r.values.iter().map(|v| v.to_bits()).collect();
    (bits, r.metrics)
}

/// Runs the sweep and prints the comparison table.
pub fn run(scale: Scale) {
    println!("## io_compress: codec sweep, hybrid PageRank on LiveJ");
    let mut t = Table::new(
        "logical vs physical classified I/O per codec",
        &[
            "codec",
            "logical",
            "physical",
            "p/l",
            "seq_rd",
            "seq_wr",
            "rand_rd",
            "rand_wr",
            "modeled_s",
            "values",
        ],
    );
    let mut report = BenchReport::new("io_compress", scale.0);
    let mut baseline: Option<(Vec<u64>, u64)> = None;
    let mut gaps_physical = None;
    let mut bv_physical = None;
    for codec in CodecChoice::ALL {
        let (bits, m) = run_with(codec, scale);
        let (physical, logical) = (m.total_io_bytes(), m.total_io_logical_bytes());
        let identical = match &baseline {
            None => {
                baseline = Some((bits, logical));
                true
            }
            Some((b, _)) => *b == bits,
        };
        if codec == CodecChoice::Gaps {
            gaps_physical = Some(physical);
        }
        if codec == CodecChoice::Bv {
            bv_physical = Some(physical);
        }
        let sum = |f: fn(&hybridgraph_storage::IoSnapshot) -> u64| -> u64 {
            m.steps.iter().map(|s| f(&s.io)).sum()
        };
        t.row(vec![
            codec.label().into(),
            bytes(logical),
            bytes(physical),
            ratio(m.io_compression_ratio()),
            bytes(sum(|io| io.seq_read_bytes)),
            bytes(sum(|io| io.seq_write_bytes)),
            bytes(sum(|io| io.rand_read_bytes)),
            bytes(sum(|io| io.rand_write_bytes)),
            secs(scale.project_secs(m.modeled_total_secs())),
            if identical { "identical" } else { "DIFFER" }.into(),
        ]);
        report.push(
            BenchRow::deterministic(codec.label(), &m)
                .with_extra("p_over_l", m.io_compression_ratio())
                .with_extra("values_identical", if identical { 1.0 } else { 0.0 }),
        );
    }
    t.print();
    let (_, none_logical) = baseline.expect("sweep ran");
    if let Some(gp) = gaps_physical {
        let saved = 100.0 * (1.0 - gp as f64 / none_logical.max(1) as f64);
        println!("gaps vs none: physical I/O reduced {saved:.1}%");
        if let Some(bp) = bv_physical {
            let saved = 100.0 * (1.0 - bp as f64 / gp.max(1) as f64);
            println!("bv vs gaps:   physical I/O reduced {saved:.1}% further");
        }
    }
    report.write_announced();
}
