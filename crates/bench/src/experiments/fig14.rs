//! Fig. 14 — hybrid during iterations: SSSP over `twi`, limited memory.
//!
//! (a) the switching metric `Q_t` per superstep on the HDD and SSD
//! profiles, with the switch points; (b)–(d) per-superstep disk I/O,
//! network messages, and memory usage for push, b-pull and hybrid.

use crate::table::{bytes, Table};
use crate::{buffer_for, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, JobMetrics, Mode};
use hybridgraph_graph::Dataset;
use hybridgraph_storage::DeviceProfile;

fn run_mode(mode: Mode, profile: DeviceProfile, scale: Scale) -> JobMetrics {
    let d = Dataset::Twi;
    let g = scale.build(d);
    let cfg = JobConfig::new(mode, workers_for(d))
        .with_buffer(buffer_for(d, scale))
        .with_profile(profile);
    run_algo(Algo::Sssp, &g, cfg)
}

/// Prints Fig. 14 (a)–(d).
pub fn run(scale: Scale) {
    let hdd = run_mode(Mode::Hybrid, DeviceProfile::local_hdd(), scale);
    let ssd = run_mode(Mode::Hybrid, DeviceProfile::amazon_ssd(), scale);

    // (a) Q_t per superstep and switch points.
    let mut t = Table::new(
        "Fig 14(a) — Q_t per superstep (SSSP over twi)",
        &["superstep", "mode", "Q_t HDD (s)", "Q_t SSD (s)", "switch"],
    );
    let switches: Vec<u64> = hdd.switches.iter().map(|(s, _, _)| *s).collect();
    for (i, s) in hdd.steps.iter().enumerate() {
        let ssd_q = ssd.steps.get(i).map(|x| x.q_metric).unwrap_or(f64::NAN);
        let mark = hdd
            .switches
            .iter()
            .find(|(at, _, _)| *at == s.superstep)
            .map(|(_, from, to)| format!("{} -> {}", from.label(), to.label()))
            .unwrap_or_default();
        t.row(vec![
            s.superstep.to_string(),
            s.kind.label().into(),
            format!("{:+.3e}", s.q_metric * scale.0 as f64),
            format!("{:+.3e}", ssd_q * scale.0 as f64),
            mark,
        ]);
    }
    t.print();
    println!(
        "switch points (HDD): {:?}; (SSD): {:?}\n",
        switches,
        ssd.switches.iter().map(|(s, _, _)| *s).collect::<Vec<_>>()
    );

    // (b)-(d): per-superstep resources for push, b-pull, hybrid.
    let push = run_mode(Mode::Push, DeviceProfile::local_hdd(), scale);
    let bpull = run_mode(Mode::BPull, DeviceProfile::local_hdd(), scale);
    let mut t = Table::new(
        "Fig 14(b-d) — per-superstep resources (HDD)",
        &[
            "superstep",
            "io push",
            "io b-pull",
            "io hybrid",
            "msgs push",
            "msgs b-pull",
            "msgs hybrid",
            "mem push",
            "mem b-pull",
            "mem hybrid",
        ],
    );
    let len = push.steps.len().max(bpull.steps.len()).max(hdd.steps.len());
    let cell = |m: &JobMetrics, i: usize, f: fn(&hybridgraph_core::SuperstepMetrics) -> String| {
        m.steps.get(i).map(f).unwrap_or_else(|| "-".into())
    };
    for i in 0..len {
        t.row(vec![
            (i + 1).to_string(),
            cell(&push, i, |s| bytes(s.io.total_bytes())),
            cell(&bpull, i, |s| bytes(s.io.total_bytes())),
            cell(&hdd, i, |s| bytes(s.io.total_bytes())),
            cell(&push, i, |s| s.net_raw_messages.to_string()),
            cell(&bpull, i, |s| s.net_raw_messages.to_string()),
            cell(&hdd, i, |s| s.net_raw_messages.to_string()),
            cell(&push, i, |s| bytes(s.memory_bytes)),
            cell(&bpull, i, |s| bytes(s.memory_bytes)),
            cell(&hdd, i, |s| bytes(s.memory_bytes)),
        ]);
    }
    t.print();
}
