//! One module per reproduced table/figure. Each entry point takes the
//! dataset [`Scale`](crate::Scale) and prints the rows/series the paper's
//! figure plots.

pub mod ablation;
pub mod billion;
pub mod datasets;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17_18;
pub mod fig2;
pub mod fig26;
pub mod gateway;
pub mod graphhp;
pub mod io_compress;
pub mod multi_tenant;
pub mod observe;
pub mod overall;
pub mod prediction;
pub mod service_restart;
pub mod table5;
pub mod theorems;
pub mod trace;
pub mod vblocks;
