//! Fig. 26 (Appendix E) — the effectiveness of combining vs the sending
//! threshold: PageRank over `orkut` with pushM, pushM+com (sender-side
//! combining within each flushed buffer) and b-pull, thresholds swept
//! 1–32 MB (scaled). pushM+com's combining ratio collapses with small
//! thresholds because merge partners flush apart; b-pull's is
//! threshold-independent because it generates all messages for a
//! destination together.

use crate::table::{ratio, secs, Table};
use crate::{report_secs, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, JobMetrics, Mode};
use hybridgraph_graph::Dataset;

fn combining_ratio(m: &JobMetrics) -> f64 {
    let raw: u64 = m.steps.iter().map(|s| s.net_raw_messages).sum();
    let saved: u64 = m.steps.iter().map(|s| s.net_saved_messages).sum();
    if raw == 0 {
        0.0
    } else {
        saved as f64 / raw as f64
    }
}

/// Prints Fig. 26 (a) runtime and (b) combining ratio.
pub fn run(scale: Scale) {
    let d = Dataset::Orkut;
    let g = scale.build(d);
    let workers = workers_for(d);
    // Thresholds 1..32 MB at paper scale; scaled down with the data so
    // the buffers hold proportionally as many messages.
    let mbs = [1usize, 2, 4, 8, 16, 32];
    let mut t = Table::new(
        "Fig 26 — combining vs sending threshold (PageRank over orkut)",
        &[
            "threshold",
            "pushM (s)",
            "pushM+com (s)",
            "b-pull (s)",
            "com ratio pushM+com",
            "com ratio b-pull",
        ],
    );
    for &mb in &mbs {
        let threshold = (mb * 1024 * 1024 / scale.0).max(256);
        // Fig. 26 uses the sufficient-memory setting of Fig. 7(a).
        let mem = hybridgraph_storage::DeviceProfile::memory();
        let pushm = run_algo(
            Algo::PageRank,
            &g,
            JobConfig::new(Mode::PushM, workers)
                .with_sending_threshold(threshold)
                .with_profile(mem),
        );
        let mut com_cfg = JobConfig::new(Mode::PushM, workers)
            .with_sending_threshold(threshold)
            .with_profile(mem);
        com_cfg.push_sender_combining = true;
        let pushm_com = run_algo(Algo::PageRank, &g, com_cfg);
        let bpull = run_algo(
            Algo::PageRank,
            &g,
            JobConfig::new(Mode::BPull, workers)
                .with_sending_threshold(threshold)
                .with_profile(mem),
        );
        t.row(vec![
            format!("{mb}MB"),
            secs(report_secs(Algo::PageRank, &pushm, scale)),
            secs(report_secs(Algo::PageRank, &pushm_com, scale)),
            secs(report_secs(Algo::PageRank, &bpull, scale)),
            ratio(combining_ratio(&pushm_com)),
            ratio(combining_ratio(&bpull)),
        ]);
    }
    t.print();
}
