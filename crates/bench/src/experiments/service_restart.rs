//! `service_restart` — the durable-service chaos sweep.
//!
//! Two questions, answered deterministically:
//!
//! 1. **Crash-restart replay.** For every seeded master kill point
//!    (during load, mid-barrier, between grants), kill a durable
//!    PageRank job, revive the service from its write-ahead log on the
//!    same VFS, resume the job from its last durable cut — and require
//!    the final values and the `Q_t` audit bytes to match the
//!    uninterrupted run exactly. The table reports where each kill
//!    landed, which superstep the resume re-entered, how many WAL bytes
//!    the whole life cycle cost, and the byte-identity verdict.
//!
//! 2. **Fault-aware checkpoint spacing.** Under a worker-kill storm the
//!    Young-style fault-aware policy (spacing `sqrt(2·w·MTBF)` once
//!    failures are observed) should checkpoint *more often* than the
//!    load-factor-only adaptive policy, trading checkpoint writes for
//!    less recomputation on each rollback. The sweep runs the same
//!    killed job under both and reports checkpoints taken and
//!    recomputed supersteps.
//!
//! Emits `BENCH_service_restart.json` with wall-clock fields zeroed, so
//! CI can re-run the sweep and `git diff` the committed report.

use crate::report::{BenchReport, BenchRow};
use crate::table::{bytes, secs, Table};
use crate::{workers_for, Scale};
use hybridgraph_algos::PageRank;
use hybridgraph_core::{
    encode_qt_audits, CheckpointPolicy, FaultPhase, FaultPlan, JobConfig, JobError,
    MasterKillPoint, Mode,
};
use hybridgraph_graph::Dataset;
use hybridgraph_service::{GraphService, GraphSpec, JobRequest, ServiceConfig};
use hybridgraph_storage::{CodecChoice, MemVfs, Vfs};
use std::sync::Arc;

/// Superstep budget of each PageRank job.
const SUPERSTEPS: u64 = 5;

/// Service seeds swept by the chaos matrix.
const SEEDS: &[u64] = &[1, 42];

fn service_cfg(seed: u64) -> ServiceConfig {
    ServiceConfig {
        max_resident_jobs: 1,
        max_queued_jobs: 4,
        cache_bytes: 1 << 20,
        cache_slots: 16,
        seed,
        max_job_logical_io: None,
        max_job_memory: None,
        recovery_shed_threshold: 8,
    }
}

fn job_cfg(workers: usize, buffer: usize) -> JobConfig {
    let mut cfg = JobConfig::new(Mode::Hybrid, workers)
        .with_buffer(buffer)
        .with_checkpoint(CheckpointPolicy::EveryK(1));
    cfg.initial_mode_override = Some(Mode::Push);
    cfg
}

struct Outcome {
    values: Vec<u64>,
    audits: Vec<u8>,
    modeled_secs: f64,
    wal_bytes: u64,
}

/// Runs the sweep and writes `BENCH_service_restart.json`.
pub fn run(scale: Scale) {
    let d = Dataset::LiveJ;
    let workers = workers_for(d);
    let buffer = scale.down(13_000_000, 64);
    let points = [
        MasterKillPoint::Load,
        MasterKillPoint::MidBarrier(2),
        MasterKillPoint::BetweenGrants(2),
    ];

    println!(
        "## service_restart: durable-service chaos sweep on {d:?}, kill points {points:?}, seeds {SEEDS:?}"
    );

    let mut report = BenchReport::new("service_restart", scale.0);
    let mut t = Table::new(
        "killed-and-restored vs uninterrupted (byte identity per kill point)",
        &[
            "seed",
            "kill point",
            "resume@",
            "modeled",
            "wal bytes",
            "identical",
        ],
    );

    let mut all_identical = true;
    for &seed in SEEDS {
        let base = run_once(scale, d, workers, buffer, seed, None);
        for point in points {
            let restored = run_once(scale, d, workers, buffer, seed, Some(point));
            let identical =
                base.out.values == restored.out.values && base.out.audits == restored.out.audits;
            all_identical &= identical;
            let resume_at = restored.resume_superstep;
            t.row(vec![
                seed.to_string(),
                format!("{point:?}"),
                resume_at.map_or("load".into(), |s| s.to_string()),
                secs(restored.out.modeled_secs),
                bytes(restored.out.wal_bytes),
                if identical { "yes".into() } else { "NO".into() },
            ]);
            let mut row = BenchRow {
                label: format!("seed{seed}/{point:?}"),
                modeled_secs: restored.out.modeled_secs,
                wall_secs: 0.0,
                physical_bytes: restored.out.wal_bytes,
                logical_bytes: 0,
                supersteps: SUPERSTEPS,
                switch_decisions: Vec::new(),
                extra: Vec::new(),
            };
            row.extra.push((
                "resume_superstep".into(),
                resume_at.map_or(-1.0, |s| s as f64),
            ));
            row.extra
                .push(("byte_identical".into(), if identical { 1.0 } else { 0.0 }));
            report.push(row);
        }
    }
    t.print();
    assert!(
        all_identical,
        "a killed-and-restored run diverged from its uninterrupted baseline"
    );
    println!("every killed-and-restored run matched its baseline byte-for-byte\n");

    // Fault-aware adaptive spacing under a worker-kill storm: observed
    // failures shrink the Young interval, buying cheaper rollbacks with
    // more frequent checkpoints.
    let mut t = Table::new(
        "adaptive checkpointing under worker kills (fault-aware off/on)",
        &[
            "fault-aware",
            "checkpoints",
            "rollbacks",
            "recomputed",
            "modeled",
        ],
    );
    for fault_aware in [false, true] {
        let g = scale.build(d);
        let svc = GraphService::new(service_cfg(7));
        svc.register_graph("g", g, GraphSpec::new(workers)).unwrap();
        let plan = FaultPlan::new()
            .kill(1, 2, FaultPhase::Compute)
            .kill(2, 4, FaultPhase::Compute);
        let mut cfg = job_cfg(workers, buffer)
            .with_checkpoint(CheckpointPolicy::Adaptive)
            .with_fault_plan(Arc::new(plan))
            .with_fault_aware_checkpoint(fault_aware);
        cfg.adaptive_checkpoint_factor = 40.0;
        let m = svc
            .submit(
                Arc::new(PageRank::new(SUPERSTEPS)),
                JobRequest::new("g", cfg),
            )
            .unwrap()
            .wait()
            .expect("adaptive run must recover")
            .metrics;
        t.row(vec![
            fault_aware.to_string(),
            m.recovery.checkpoints_taken.to_string(),
            m.recovery.rollbacks.to_string(),
            m.recovery.recomputed_supersteps.to_string(),
            secs(m.modeled_total_secs()),
        ]);
        let row = BenchRow::deterministic(format!("adaptive/fault_aware={fault_aware}"), &m);
        report.push(
            row.with_extra("checkpoints_taken", m.recovery.checkpoints_taken as f64)
                .with_extra("rollbacks", m.recovery.rollbacks as f64)
                .with_extra(
                    "recomputed_supersteps",
                    m.recovery.recomputed_supersteps as f64,
                )
                .with_extra("mtbf_secs", m.recovery.mtbf_secs),
        );
    }
    t.print();

    report.write_announced();
}

struct Restored {
    out: Outcome,
    resume_superstep: Option<u64>,
}

/// One durable run: uninterrupted when `kill` is `None`, otherwise killed
/// at the given master kill point and revived via restore/resume.
fn run_once(
    scale: Scale,
    d: Dataset,
    workers: usize,
    buffer: usize,
    seed: u64,
    kill: Option<MasterKillPoint>,
) -> Restored {
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let cfg = service_cfg(seed);
    let svc = GraphService::new_durable(cfg, Arc::clone(&vfs), CodecChoice::None).unwrap();
    svc.register_graph("g", scale.build(d), GraphSpec::new(workers))
        .unwrap();

    let mut jc = job_cfg(workers, buffer);
    if let Some(point) = kill {
        jc = jc.with_fault_plan(Arc::new(FaultPlan::new().master_kill(point)));
    }
    let ticket = svc
        .submit(
            Arc::new(PageRank::new(SUPERSTEPS)),
            JobRequest::new("g", jc),
        )
        .unwrap();

    if kill.is_none() {
        let r = ticket.wait().expect("uninterrupted run failed");
        return Restored {
            out: Outcome {
                values: r.values.iter().map(|v| v.to_bits()).collect(),
                audits: encode_qt_audits(&r.metrics.qt_audit),
                modeled_secs: r.metrics.modeled_total_secs(),
                wal_bytes: svc.service_log_bytes(),
            },
            resume_superstep: None,
        };
    }

    let err = ticket.wait().unwrap_err();
    assert!(matches!(err, JobError::Halted { .. }), "{err}");
    drop(svc);

    let (svc, recovered) = GraphService::restore(cfg, Arc::clone(&vfs)).unwrap();
    assert_eq!(recovered.len(), 1);
    let rec = &recovered[0];
    let resume_superstep = rec.superstep;
    let r = svc
        .resume_job(
            Arc::new(PageRank::new(SUPERSTEPS)),
            job_cfg(workers, buffer),
            rec,
        )
        .unwrap()
        .wait()
        .expect("resumed run failed");
    Restored {
        out: Outcome {
            values: r.values.iter().map(|v| v.to_bits()).collect(),
            audits: encode_qt_audits(&r.metrics.qt_audit),
            modeled_secs: r.metrics.modeled_total_secs(),
            wal_bytes: svc.service_log_bytes(),
        },
        resume_superstep,
    }
}
