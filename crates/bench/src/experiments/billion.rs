//! `billion` — the streaming billion-edge catalog entry, end to end.
//!
//! Builds the `twi-stream` entry ([`StreamSpec::twitter`]) block-at-a-time
//! through the storage crate's [`StreamEblockWriter`] under the BV codec,
//! then runs a b-pull PageRank superstep sweep where every `g_{j,i}` read
//! is served by the Elias-Fano extent directory — per-block random access,
//! never a whole-extent or whole-directory decode.
//!
//! At the default `--scale 2000` this is a fast smoke of the same code
//! path (~17 K vertices, ~0.5 M edges, in-memory VFS). The acceptance
//! run is `repro --scale 1 billion`: ≥1 B edges generated streaming,
//! spilled through a directory-backed VFS, with the resident set bounded
//! by one source block plus the EF directory and the rank/degree
//! columns — the edge list itself never exists in memory.

use crate::table::{bytes, ratio, Table};
use crate::Scale;
use hybridgraph_graph::StreamSpec;
use hybridgraph_storage::stream::{StreamEblockStore, StreamEblockWriter};
use hybridgraph_storage::{AccessClass, CodecChoice, DirVfs, MemVfs, Vfs};
use std::sync::Arc;

/// A built store plus the sweep-side per-vertex state.
struct Built {
    store: StreamEblockStore,
    deg: Vec<u32>,
    edges: u64,
    /// Largest per-source-block working set during the build (bytes).
    peak_block_bytes: u64,
}

/// Streams the entry into `vfs`: for each source block, generate its
/// adjacency (the only edges ever resident), bucket fragments per
/// destination block, and append the row of Eblocks in index order.
fn build(spec: &StreamSpec, vfs: &dyn Vfs, codec: CodecChoice) -> Built {
    let nblocks = spec.nblocks();
    let bs = u64::from(spec.block_size());
    let n = spec.vertices;
    let mut w = StreamEblockWriter::create(vfs, "billion", nblocks, codec).expect("create store");
    let mut deg = vec![0u32; n as usize];
    let mut dsts: Vec<u32> = Vec::new();
    let mut cells: Vec<Vec<u8>> = vec![Vec::new(); nblocks as usize];
    let mut cell_frags: Vec<u32> = vec![0; nblocks as usize];
    let mut edges = 0u64;
    let mut peak = 0u64;
    for sb in 0..nblocks {
        let lo = u64::from(sb) * bs;
        let hi = (lo + bs).min(n);
        for cell in &mut cells {
            cell.clear();
        }
        cell_frags.fill(0);
        for v in lo..hi {
            spec.out_dsts(v, &mut dsts);
            deg[v as usize] = dsts.len() as u32;
            edges += dsts.len() as u64;
            // A sorted list splits into contiguous per-destination-block
            // runs; each run is one fragment of Eblock g_{sb,db}.
            let mut i = 0;
            while i < dsts.len() {
                let db = dsts[i] / bs as u32;
                let mut j = i + 1;
                while j < dsts.len() && dsts[j] / bs as u32 == db {
                    j += 1;
                }
                let cell = &mut cells[db as usize];
                cell.extend_from_slice(&(v as u32).to_le_bytes());
                cell.extend_from_slice(&((j - i) as u32).to_le_bytes());
                for &d in &dsts[i..j] {
                    cell.extend_from_slice(&d.to_le_bytes());
                    cell.extend_from_slice(&1.0f32.to_le_bytes());
                }
                cell_frags[db as usize] += 1;
                i = j;
            }
        }
        peak = peak.max(cells.iter().map(|c| c.capacity() as u64).sum());
        for (db, cell) in cells.iter().enumerate() {
            w.append_eblock(cell, cell_frags[db])
                .expect("append eblock");
        }
    }
    Built {
        store: w.finish().expect("finish store"),
        deg,
        edges,
        peak_block_bytes: peak,
    }
}

/// One b-pull PageRank superstep sweep: destination blocks pull their
/// Eblock column via EF random access. Returns the final rank sum (a
/// deterministic checksum of the whole computation).
fn sweep(b: &Built, n: usize, supersteps: u32) -> f64 {
    let nblocks = b.store.nblocks();
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..supersteps {
        let mut next = vec![0.15 / n as f64; n];
        for db in 0..nblocks {
            for sb in 0..nblocks {
                let raw = b
                    .store
                    .read_eblock_raw(sb, db, AccessClass::RandRead)
                    .expect("read eblock");
                let mut at = 0usize;
                while at < raw.len() {
                    let src = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap()) as usize;
                    let cnt = u32::from_le_bytes(raw[at + 4..at + 8].try_into().unwrap()) as usize;
                    at += 8;
                    let contr = 0.85 * rank[src] / f64::from(b.deg[src]);
                    for _ in 0..cnt {
                        let dst = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap()) as usize;
                        next[dst] += contr;
                        at += 8;
                    }
                }
            }
        }
        rank = next;
    }
    rank.iter().sum()
}

/// Runs the entry at `1/scale` of billion scale (`--scale 1` = the real
/// thing; anything past ~100 M edges spills through a directory VFS).
pub fn run(scale: Scale) {
    let spec = StreamSpec::twitter().scaled(scale.0);
    println!(
        "## billion: streaming {} build + b-pull sweep ({} vertices, {} blocks)",
        spec.name,
        spec.vertices,
        spec.nblocks()
    );
    let big = spec.expected_edges() > 100_000_000;
    let tmp = std::env::temp_dir().join("hybridgraph-billion");
    let vfs: Arc<dyn Vfs> = if big {
        std::fs::create_dir_all(&tmp).expect("create spill dir");
        Arc::new(DirVfs::new(&tmp).expect("open spill dir"))
    } else {
        Arc::new(MemVfs::new())
    };
    let b = build(&spec, vfs.as_ref(), CodecChoice::Bv);
    if spec.vertices >= StreamSpec::twitter().vertices {
        assert!(b.edges >= 1_000_000_000, "full entry must be ≥1B edges");
    }
    let (logical, physical) = (b.store.total_logical_bytes(), b.store.total_stored_bytes());
    let flat_index = 16 * u64::from(spec.nblocks()) * u64::from(spec.nblocks());
    let supersteps = 3u32;
    let before = vfs.stats().snapshot();
    let sum = sweep(&b, spec.vertices as usize, supersteps);
    let io = vfs.stats().snapshot().delta(&before);

    let mut t = Table::new(
        "streaming build + EF-served b-pull sweep (codec bv)",
        &["metric", "value"],
    );
    t.row(vec!["edges".into(), b.edges.to_string()]);
    t.row(vec!["logical bytes".into(), bytes(logical)]);
    t.row(vec!["physical bytes".into(), bytes(physical)]);
    t.row(vec![
        "p/l ratio".into(),
        ratio(physical as f64 / logical.max(1) as f64),
    ]);
    t.row(vec![
        "ef directory".into(),
        bytes(b.store.index_memory_bytes()),
    ]);
    t.row(vec!["flat directory would be".into(), bytes(flat_index)]);
    t.row(vec![
        "peak build block set".into(),
        bytes(b.peak_block_bytes),
    ]);
    t.row(vec![
        "sweep rand reads (physical)".into(),
        bytes(io.rand_read_bytes),
    ]);
    t.row(vec![
        "sweep rand reads (logical)".into(),
        bytes(io.rand_read_logical_bytes),
    ]);
    t.row(vec!["supersteps".into(), supersteps.to_string()]);
    t.row(vec!["rank sum".into(), format!("{sum:.12}")]);
    t.print();
    // The sweep must have read every extent per superstep — via EF
    // random access, whole extents only, no directory I/O.
    assert_eq!(
        io.rand_read_logical_bytes,
        u64::from(supersteps) * logical,
        "sweep logical bytes must be supersteps × catalog logical bytes"
    );
    if big {
        let _ = std::fs::remove_dir_all(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_builds_and_sweeps() {
        let spec = StreamSpec::twitter().scaled(8192);
        let vfs = MemVfs::new();
        let b = build(&spec, &vfs, CodecChoice::Bv);
        assert!(b.edges > 0);
        assert!(b.store.total_stored_bytes() < b.store.total_logical_bytes());
        let sum = sweep(&b, spec.vertices as usize, 2);
        // Rank mass stays near 1: 0.15 base + 0.85 × (retained mass).
        assert!(sum > 0.5 && sum < 1.01, "rank sum {sum}");
    }

    #[test]
    fn sweep_is_deterministic_across_codecs() {
        let spec = StreamSpec::twitter().scaled(8192);
        let run_with = |codec| {
            let vfs = MemVfs::new();
            let b = build(&spec, &vfs, codec);
            sweep(&b, spec.vertices as usize, 2).to_bits()
        };
        let none = run_with(CodecChoice::None);
        for codec in [CodecChoice::Gaps, CodecChoice::Bv] {
            assert_eq!(run_with(codec), none, "{codec:?} changed the values");
        }
    }
}
