//! Ablations of the design choices DESIGN.md calls out: b-pull's
//! pre-pull pipeline, sender-side combining, and hybrid's switching
//! threshold (0 = the paper's bare `Q_t` sign rule).

use crate::table::{bytes, secs, Table};
use crate::{buffer_for, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, JobMetrics, Mode};
use hybridgraph_graph::Dataset;

fn base_cfg(d: Dataset, mode: Mode, scale: Scale) -> JobConfig {
    JobConfig::new(mode, workers_for(d)).with_buffer(buffer_for(d, scale))
}

fn row(label: &str, m: &JobMetrics, scale: Scale) -> Vec<String> {
    vec![
        label.to_string(),
        secs(scale.project_secs(m.modeled_total_secs())),
        bytes(m.total_io_bytes()),
        bytes(m.total_net_bytes()),
        m.peak_memory_bytes().to_string(),
        format!("{}", m.switches.len()),
    ]
}

/// Prints the ablation table.
pub fn run(scale: Scale) {
    let headers = [
        "variant",
        "runtime (s)",
        "io",
        "net",
        "peak mem B",
        "switches",
    ];

    // (1) b-pull's pre-pull pipeline (PageRank over livej): buys overlap
    // at the price of a second in-flight receive buffer (Eq. 5's 2x).
    let d = Dataset::LiveJ;
    let g = scale.build(d);
    let mut t = Table::new("ablation — b-pull pre-pull (PageRank, livej)", &headers);
    for (label, pre) in [("pre-pull on", true), ("pre-pull off", false)] {
        let mut cfg = base_cfg(d, Mode::BPull, scale);
        cfg.pre_pull = pre;
        t.row(row(label, &run_algo(Algo::PageRank, &g, cfg), scale));
    }
    t.print();

    // (2) b-pull combining vs concatenation vs neither is Fig. 18/26
    // territory; here: combining's effect on bytes AND runtime.
    let mut t = Table::new("ablation — b-pull combining (PageRank, livej)", &headers);
    for (label, combining) in [("combining on", true), ("concatenate only", false)] {
        let mut cfg = base_cfg(d, Mode::BPull, scale);
        cfg.combining = combining;
        t.row(row(label, &run_algo(Algo::PageRank, &g, cfg), scale));
    }
    t.print();

    // (3) hybrid's switching threshold (SSSP over twi, where switching
    // actually fires): 0 restores the paper's bare sign rule.
    let d = Dataset::Twi;
    let g = scale.build(d);
    let mut t = Table::new("ablation — hybrid switch threshold (SSSP, twi)", &headers);
    for (label, thr) in [
        ("threshold 0 (paper)", 0.0),
        ("threshold 0.1 (default)", 0.1),
        ("threshold 1.0", 1.0),
    ] {
        let mut cfg = base_cfg(d, Mode::Hybrid, scale);
        cfg.switch_threshold = thr;
        t.row(row(label, &run_algo(Algo::Sssp, &g, cfg), scale));
    }
    t.print();

    // (4) hybrid's decision interval Δt (paper argues for 2).
    let mut t = Table::new("ablation — hybrid Δt interval (SSSP, twi)", &headers);
    for dt in [1u64, 2, 4] {
        let mut cfg = base_cfg(d, Mode::Hybrid, scale);
        cfg.switch_interval = dt;
        t.row(row(
            &format!("Δt = {dt}"),
            &run_algo(Algo::Sssp, &g, cfg),
            scale,
        ));
    }
    t.print();

    // (5) forcing hybrid's initial mode against Theorem 2's choice.
    let mut t = Table::new("ablation — hybrid initial mode (PageRank, livej)", &headers);
    let gl = scale.build(Dataset::LiveJ);
    for (label, init) in [
        ("Theorem 2 (b-pull)", None),
        ("forced push", Some(Mode::Push)),
        ("forced b-pull", Some(Mode::BPull)),
    ] {
        let mut cfg = base_cfg(Dataset::LiveJ, Mode::Hybrid, scale);
        cfg.initial_mode_override = init;
        t.row(row(label, &run_algo(Algo::PageRank, &gl, cfg), scale));
    }
    t.print();
}
