//! Table 4 — the dataset catalog, paper sizes vs generated stand-ins.

use crate::table::Table;
use crate::Scale;
use hybridgraph_graph::Dataset;

/// Prints the paper's Table 4 next to the generated stand-ins.
pub fn run(scale: Scale) {
    let mut t = Table::new(
        &format!("Table 4 — datasets (stand-ins at 1/{})", scale.0),
        &[
            "graph",
            "paper |V|",
            "paper |E|",
            "paper deg",
            "gen |V|",
            "gen |E|",
            "gen deg",
            "gen maxdeg",
        ],
    );
    for d in Dataset::ALL {
        let spec = d.spec();
        let g = scale.build(d);
        t.row(vec![
            d.name().into(),
            format!("{:.1}M", spec.paper_vertices as f64 / 1e6),
            format!("{:.0}M", spec.paper_edges as f64 / 1e6),
            format!("{:.1}", spec.paper_avg_degree()),
            format!("{}", g.num_vertices()),
            format!("{}", g.num_edges()),
            format!("{:.1}", g.avg_degree()),
            format!("{}", g.max_degree()),
        ]);
    }
    t.print();
}
