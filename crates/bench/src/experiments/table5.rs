//! Table 5 (Appendix F) — the modified-GraphLab scenarios: how the pull
//! baseline degrades as its data moves to disk.
//!
//! | scenario        | edges  | vertex cache                       |
//! |-----------------|--------|------------------------------------|
//! | original        | memory | all vertices                       |
//! | ext-mem         | memory | all vertices (disk-extension code) |
//! | ext-edge        | disk   | all vertices                       |
//! | ext-edge-v3     | disk   | 3 M vertices (scaled)              |
//! | ext-edge-v2.5   | disk   | 2.5 M vertices (scaled)            |
//!
//! The paper's punchline: with edges on disk the slowdown is modest, but
//! shrinking the vertex cache below the working set collapses performance
//! by two orders of magnitude (random value reads on every gather).

use crate::table::{secs, Table};
use crate::{run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;
use hybridgraph_storage::DeviceProfile;

struct ScenarioSpec {
    name: &'static str,
    memory_profile: bool,
    /// Vertex-cache capacity as a fraction of the per-task population.
    /// The paper caps caches at 3 M / 2.5 M vertices per task against a
    /// per-task working set (locals + vertex-cut mirrors) of ~2.9 M for
    /// the small graphs — i.e. slightly above and slightly below the
    /// working set. We reproduce the same relation directly.
    cache_fraction: Option<f64>,
}

const SCENARIOS: [ScenarioSpec; 5] = [
    ScenarioSpec {
        name: "original",
        memory_profile: true,
        cache_fraction: None,
    },
    ScenarioSpec {
        name: "ext-mem",
        memory_profile: true,
        cache_fraction: None,
    },
    ScenarioSpec {
        name: "ext-edge",
        memory_profile: false,
        cache_fraction: None,
    },
    ScenarioSpec {
        name: "ext-edge-v3",
        memory_profile: false,
        cache_fraction: Some(1.0),
    },
    ScenarioSpec {
        name: "ext-edge-v2.5",
        memory_profile: false,
        cache_fraction: Some(0.85),
    },
];

/// Prints Table 5: pull-baseline runtime per scenario over the small
/// graphs, all four algorithms.
pub fn run(scale: Scale) {
    for algo in Algo::ALL {
        let mut t = Table::new(
            &format!(
                "Table 5 — modified GraphLab scenarios, {} (s, projected)",
                algo.label()
            ),
            &["scenario", "livej", "wiki", "orkut"],
        );
        for sc in &SCENARIOS {
            let mut cells = vec![sc.name.to_string()];
            for d in Dataset::SMALL {
                let g = scale.build(d);
                let mut cfg = JobConfig::new(Mode::Pull, workers_for(d));
                if sc.memory_profile {
                    cfg = cfg.with_profile(DeviceProfile::memory());
                }
                cfg.lru_capacity = Some(match sc.cache_fraction {
                    Some(frac) => {
                        let per_task = g.num_vertices() / workers_for(d);
                        ((per_task as f64 * frac) as usize).max(8)
                    }
                    None => g.num_vertices() + 1,
                });
                // Table 5 never spills messages; only vertex residency
                // varies, so leave the message buffer unlimited.
                let m = run_algo(algo, &g, cfg);
                cells.push(secs(scale.project_secs(m.modeled_total_secs())));
            }
            t.row(cells);
        }
        t.print();
    }
}
