//! Fig. 2 — the motivating experiment: Giraph-style push over `wiki`
//! with the message buffer swept from "all in memory" down to 0.5 M
//! messages (scaled). Reports overall runtime and the percentage of
//! messages that hit disk for PageRank (10 supersteps) and SSSP.

use crate::table::{secs, Table};
use crate::{buffer_for, run_algo_steps, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;

/// Runs the buffer sweep for one algorithm.
fn sweep(algo: Algo, scale: Scale) {
    let d = Dataset::Wiki;
    let g = scale.build(d);
    let workers = workers_for(d);
    let base = buffer_for(d, scale); // the paper's 0.5 M messages, scaled
                                     // The paper sweeps 0.5 .. 9.5 million messages plus "mem".
    let sweep: Vec<Option<usize>> = vec![
        None, // mem
        Some(base * 19),
        Some(base * 16),
        Some(base * 13),
        Some(base * 10),
        Some(base * 7),
        Some(base * 4),
        Some(base),
    ];
    let mut t = Table::new(
        &format!("Fig 2 — push over wiki, {} (buffer sweep)", algo.label()),
        &[
            "buffer (msgs)",
            "runtime (s)",
            "msgs on disk %",
            "supersteps",
        ],
    );
    for buf in sweep {
        let mut cfg = JobConfig::new(Mode::Push, workers);
        if let Some(b) = buf {
            cfg = cfg.with_buffer(b);
        }
        let budget = if algo == Algo::PageRank { 10 } else { 5 };
        let m = run_algo_steps(algo, &g, cfg, budget);
        let total_msgs: u64 = m.steps.iter().map(|s| s.messages_produced).sum();
        // Sm: 4-byte destination id + message payload (f64 for PageRank,
        // f32 for SSSP).
        let sm = if algo == Algo::PageRank { 12 } else { 8 };
        let spill_bytes: u64 = m.steps.iter().map(|s| s.sem.msg_spill_bytes).sum();
        let spilled_msgs = spill_bytes / sm;
        let pct = if total_msgs == 0 {
            0.0
        } else {
            100.0 * spilled_msgs as f64 / total_msgs as f64
        };
        t.row(vec![
            buf.map(|b| b.to_string()).unwrap_or_else(|| "mem".into()),
            secs(scale.project_secs(m.modeled_total_secs())),
            format!("{pct:.0}"),
            m.supersteps().to_string(),
        ]);
    }
    t.print();
}

/// Prints Fig. 2 (a) and (b).
pub fn run(scale: Scale) {
    sweep(Algo::PageRank, scale);
    sweep(Algo::Sssp, scale);
}
