//! `observe` — one seeded hybrid PageRank run with the observability
//! sink installed.
//!
//! Produces, on demand:
//!
//! * a Chrome Trace Event JSON file (`--trace <path>`) with one track
//!   per worker plus master/control/net tracks, validated with the
//!   crate's pure-Rust JSON checker before it touches disk;
//! * a Prometheus-style text exposition (`--metrics <path>`) of the
//!   same events plus job-level gauges (modeled/wall seconds, ARQ
//!   overhead) that are *not* part of the deterministic trace;
//! * the human-readable `Q_t` decision-audit table
//!   (`--explain-switch`), one row per Switcher evaluation.
//!
//! Timestamps are modeled time, so two runs of this experiment emit
//! byte-identical trace files — diff them to prove it.

use crate::{buffer_for, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;
use hybridgraph_obs::{
    export_chrome_trace, export_prometheus, render_table, validate_json, ExtraMetric, TraceSink,
};
use hybridgraph_storage::CodecChoice;
use std::path::PathBuf;
use std::sync::Arc;

/// Output destinations parsed from the `repro` command line.
#[derive(Clone, Debug, Default)]
pub struct ObserveOpts {
    /// Where to write the Chrome trace JSON (skipped when `None`).
    pub trace: Option<PathBuf>,
    /// Where to write the Prometheus text exposition (skipped when
    /// `None`).
    pub metrics: Option<PathBuf>,
    /// Print the `Q_t` audit table to stdout.
    pub explain_switch: bool,
    /// On-disk codec for the run (`--codec`; defaults to none). The
    /// Chrome trace stays deterministic per codec choice: two runs with
    /// the same codec emit byte-identical files.
    pub codec: CodecChoice,
    /// Execution mode override (`--mode`; defaults to the adaptive
    /// hybrid). `async` runs the GraphHP-style pseudo-round engine and
    /// populates the classification/activity gauges below.
    pub mode: Option<Mode>,
}

/// Runs the instrumented job and writes the requested artifacts.
pub fn run(scale: Scale, opts: &ObserveOpts) {
    let d = Dataset::LiveJ;
    let g = scale.build(d);
    let workers = workers_for(d);
    let sink = Arc::new(TraceSink::new(workers));
    let mode = opts.mode.unwrap_or(Mode::Hybrid);
    let mut cfg = JobConfig::new(mode, workers)
        .with_buffer(buffer_for(d, scale))
        .with_trace(Arc::clone(&sink))
        .with_codec(opts.codec);
    if mode == Mode::Hybrid {
        // Start in push even where Theorem 2 would pick b-pull, so the
        // demo exercises the Q_t evaluation *and* an actual switch
        // superstep.
        cfg.initial_mode_override = Some(Mode::Push);
    }
    let m = run_algo(Algo::PageRank, &g, cfg);

    println!(
        "## observe: instrumented {} PageRank on {d:?} (codec {})",
        mode.label(),
        opts.codec.label()
    );
    println!(
        "supersteps={} switches={} qt_evaluations={} trace_events={} dropped={}",
        m.supersteps(),
        m.switches.len(),
        m.qt_audit.len(),
        sink.total_events(),
        sink.total_dropped(),
    );
    let seq: Vec<&str> = m.steps.iter().map(|s| s.kind.label()).collect();
    println!("mode sequence: {}", seq.join(" "));

    if let Some(path) = &opts.trace {
        let json = export_chrome_trace(&sink);
        validate_json(&json).expect("exported Chrome trace is not valid JSON");
        write_artifact(path, &json);
        println!("trace:   {} ({} bytes)", path.display(), json.len());
    }
    if let Some(path) = &opts.metrics {
        // Job-level, timing-driven quantities live here — never in the
        // Chrome trace, which must stay byte-identical run to run.
        let no = &m.net_overhead;
        let mut extras = vec![
            gauge("job_modeled_secs", m.modeled_total_secs()),
            gauge("job_wall_secs", m.wall_total_secs()),
            gauge("job_supersteps", m.supersteps() as f64),
            gauge("job_switches", m.switches.len() as f64),
            gauge("job_peak_memory_bytes", m.peak_memory_bytes() as f64),
            gauge("arq_retransmitted_bytes", no.retransmitted_bytes as f64),
            gauge("arq_duplicate_drops", no.duplicate_drops as f64),
            gauge("arq_dropped_frames", no.dropped_frames as f64),
            gauge("arq_delayed_frames", no.delayed_frames as f64),
            gauge("arq_acks_sent", no.acks_sent as f64),
            gauge("job_io_physical_bytes", m.total_io_bytes() as f64),
            gauge("job_io_logical_bytes", m.total_io_logical_bytes() as f64),
            gauge("job_io_compression_ratio", m.io_compression_ratio()),
            // GraphHP classification/activity gauges: zero for strict-BSP
            // runs, populated under `--mode async`.
            gauge("job_boundary_vertices", m.load.boundary_vertices as f64),
            gauge("job_interior_vertices", m.load.interior_vertices as f64),
            gauge("job_barriers_saved", m.barriers_saved() as f64),
            gauge("job_pseudo_rounds", m.total_pseudo_rounds() as f64),
            gauge(
                "job_active_fraction",
                m.steps
                    .last()
                    .map_or(0.0, |s| m.active_fraction(s.superstep)),
            ),
        ];
        // Per-tier compression ratios over the whole job: physical over
        // logical bytes summed across supersteps, one series per access
        // class. All 1.0 without a codec.
        let tier = |phys: u64, logi: u64| {
            if logi == 0 {
                1.0
            } else {
                phys as f64 / logi as f64
            }
        };
        let sums = |f: fn(&hybridgraph_storage::IoSnapshot) -> (u64, u64)| {
            m.steps
                .iter()
                .map(|s| f(&s.io))
                .fold((0, 0), |(p, l), (dp, dl)| (p + dp, l + dl))
        };
        for (name, (p, l)) in [
            (
                "seq_read",
                sums(|io| (io.seq_read_bytes, io.seq_read_logical_bytes)),
            ),
            (
                "seq_write",
                sums(|io| (io.seq_write_bytes, io.seq_write_logical_bytes)),
            ),
            (
                "rand_read",
                sums(|io| (io.rand_read_bytes, io.rand_read_logical_bytes)),
            ),
            (
                "rand_write",
                sums(|io| (io.rand_write_bytes, io.rand_write_logical_bytes)),
            ),
        ] {
            extras.push(gauge("job_codec_ratio", tier(p, l)).label("tier", name));
        }
        let text = export_prometheus(&sink, &extras);
        write_artifact(path, &text);
        println!("metrics: {} ({} bytes)", path.display(), text.len());
    }
    if opts.explain_switch {
        println!("\n{}", render_table(&m.qt_audit));
    }
}

fn gauge(name: &str, value: f64) -> ExtraMetric {
    ExtraMetric::new(name, value)
}

fn write_artifact(path: &PathBuf, contents: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    std::fs::write(path, contents).expect("write artifact");
}
