//! Figs. 23–25 (Appendix C) — the impact of the Vblock count `V`:
//! memory requirements drop as `V` grows (smaller receive buffers) while
//! I/O bytes grow (more fragments, Theorem 1); runtime bottoms out in
//! between, with SSSP showing the turning point the appendix discusses.

use crate::table::{bytes, secs, Table};
use crate::{buffer_for, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;

fn sweep(d: Dataset, scale: Scale) {
    let g = scale.build(d);
    let workers = workers_for(d);
    // x-axis of Figs. 23-25: min (1 block/worker) then 50..400 blocks
    // total, scaled to blocks per worker.
    let per_worker: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
    let mut t = Table::new(
        &format!("Figs 23-25 — impact of Vblock count over {}", d.name()),
        &[
            "Vblocks/worker",
            "PR mem",
            "PR io",
            "PR time",
            "SSSP mem",
            "SSSP io",
            "SSSP time",
        ],
    );
    for &v in &per_worker {
        let mut row = vec![v.to_string()];
        for algo in [Algo::PageRank, Algo::Sssp] {
            let mut cfg = JobConfig::new(Mode::BPull, workers).with_buffer(buffer_for(d, scale));
            cfg.vblocks_per_worker = Some(v);
            let m = run_algo(algo, &g, cfg);
            // Fig 23(a): average (PR) or max (SSSP) per-superstep memory.
            let mem = if algo == Algo::PageRank {
                let steps = m.steps.len().max(1) as u64;
                m.steps.iter().map(|s| s.memory_bytes).sum::<u64>() / steps
            } else {
                m.peak_memory_bytes()
            };
            row.push(bytes(mem));
            row.push(bytes(m.total_io_bytes()));
            row.push(secs(scale.project_secs(m.modeled_total_secs())));
        }
        t.row(row);
    }
    t.print();
}

/// Prints the V sweep over `livej` and `wiki`.
pub fn run(scale: Scale) {
    sweep(Dataset::LiveJ, scale);
    sweep(Dataset::Wiki, scale);
}
