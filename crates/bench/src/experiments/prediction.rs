//! Figs. 11–13 — prediction accuracy of the switching sub-metrics.
//!
//! With a switching interval of Δt = 2, the value collected at superstep
//! `t` predicts superstep `t + 2`. The figures plot, per superstep, the
//! ratio of the predicted value to the value actually observed two
//! supersteps later, for `M_co` (Fig. 11), `C_io(push)` (Fig. 12) and
//! `C_io(b-pull)` (Fig. 13), running SSSP and SA over every dataset.

use crate::table::{ratio, Table};
use crate::{buffer_for, run_algo, workers_for, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode, SuperstepMetrics};
use hybridgraph_graph::Dataset;

/// Which sub-metric a figure plots.
#[derive(Copy, Clone, Debug)]
pub enum Metric {
    /// Fig. 11.
    Mco,
    /// Fig. 12.
    CioPush,
    /// Fig. 13.
    CioBpull,
}

impl Metric {
    fn get(self, s: &SuperstepMetrics) -> f64 {
        match self {
            Metric::Mco => s.mco as f64,
            Metric::CioPush => s.cio_push_bytes as f64,
            Metric::CioBpull => s.cio_bpull_bytes as f64,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Metric::Mco => "Mco",
            Metric::CioPush => "Cio(push)",
            Metric::CioBpull => "Cio(b-pull)",
        }
    }
}

/// Prints the per-superstep predicted/actual ratios of `metric` for one
/// algorithm across all datasets (columns = datasets, rows = supersteps).
pub fn accuracy(metric: Metric, algo: Algo, scale: Scale, max_rows: usize) {
    let mut series: Vec<Vec<f64>> = Vec::new();
    let mut names = Vec::new();
    for d in Dataset::ALL {
        let g = scale.build(d);
        let cfg = JobConfig::new(Mode::Hybrid, workers_for(d)).with_buffer(buffer_for(d, scale));
        let m = run_algo(algo, &g, cfg);
        let vals: Vec<f64> = m.steps.iter().map(|s| metric.get(s)).collect();
        // ratio(t) = predicted-at-(t-2) / actual-at-t
        let ratios: Vec<f64> = (2..vals.len())
            .map(|t| {
                if vals[t] == 0.0 {
                    if vals[t - 2] == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    vals[t - 2] / vals[t]
                }
            })
            .collect();
        names.push(d.name());
        series.push(ratios);
    }
    let mut headers = vec!["superstep"];
    headers.extend(names.iter().copied());
    let mut t = Table::new(
        &format!(
            "prediction accuracy of {} — {}",
            metric.label(),
            algo.label()
        ),
        &headers,
    );
    let rows = series.iter().map(Vec::len).max().unwrap_or(0).min(max_rows);
    for r in 0..rows {
        let mut cells = vec![format!("{}", r + 3)];
        for s in &series {
            cells.push(match s.get(r) {
                Some(v) if v.is_finite() => ratio(*v),
                Some(_) => "inf".into(),
                None => "-".into(),
            });
        }
        t.row(cells);
    }
    t.print();
}

/// Fig. 11 — `M_co` accuracy for SSSP and SA.
pub fn fig11(scale: Scale) {
    accuracy(Metric::Mco, Algo::Sssp, scale, 16);
    accuracy(Metric::Mco, Algo::Sa, scale, 16);
}

/// Fig. 12 — `C_io(push)` accuracy.
pub fn fig12(scale: Scale) {
    accuracy(Metric::CioPush, Algo::Sssp, scale, 16);
    accuracy(Metric::CioPush, Algo::Sa, scale, 16);
}

/// Fig. 13 — `C_io(b-pull)` accuracy.
pub fn fig13(scale: Scale) {
    accuracy(Metric::CioBpull, Algo::Sssp, scale, 16);
    accuracy(Metric::CioBpull, Algo::Sa, scale, 16);
}
