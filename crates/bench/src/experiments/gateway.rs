//! `gateway` — the network front door, measured.
//!
//! Two questions, answered deterministically:
//!
//! 1. **Transport overhead.** The same hybrid PageRank job runs three
//!    ways: submitted directly to a `GraphService`, through the gateway
//!    over the in-process loopback transport, and through the gateway
//!    over real TCP on localhost. The value blob and `Q_t` audit bytes
//!    must be identical across all three (the gateway adds observation,
//!    never behavior), and the wire cost — frames and bytes in each
//!    direction — must be identical between loopback and TCP (the frame
//!    layer is transport-agnostic). Modeled time is untouched by
//!    transport choice; the wire counters quantify what the front door
//!    itself costs.
//!
//! 2. **Multi-engine dispatch.** Four tenants whose graph names place
//!    them on four *distinct* engines of a 4-wide pool are batch-
//!    submitted against 1-, 2- and 4-engine pools. Engines share
//!    nothing, so the pool's modeled makespan — the max over engines of
//!    the modeled seconds its tenants consume — shrinks as tenants
//!    spread out, while each tenant's own bytes stay constant.
//!
//! Everything reported is modeled or wire-counted (wall clock is
//! zeroed), so `BENCH_gateway.json` is byte-identical run to run and CI
//! diffs it through the perf gate.

use crate::report::{BenchReport, BenchRow};
use crate::table::{bytes, secs, Table};
use crate::{buffer_for, workers_for, Scale};
use hybridgraph_algos::PageRank;
use hybridgraph_core::{encode_qt_audits, JobConfig, Mode};
use hybridgraph_gateway::proto::encode_values;
use hybridgraph_gateway::{
    GatewayClient, GatewayConfig, GatewayServer, JobOptions, JobOutcome, LoopbackTransport,
    ProgramSpec, SubmitReq, TcpTransport,
};
use hybridgraph_graph::{Dataset, Graph};
use hybridgraph_service::{EnginePool, GraphSpec, JobRequest, ServiceConfig};
use hybridgraph_storage::CodecChoice;
use std::sync::Arc;

/// Superstep budget of every PageRank job.
const SUPERSTEPS: u64 = 5;
/// Pool seed of every engine pool (engine 0 keeps it verbatim).
const SEED: u64 = 42;
/// Swept pool widths.
const ENGINE_COUNTS: &[usize] = &[1, 2, 4];
/// Tenants in the dispatch sweep.
const TENANTS: usize = 4;

fn svc_cfg() -> ServiceConfig {
    ServiceConfig {
        seed: SEED,
        ..ServiceConfig::default()
    }
}

fn options(buffer: usize) -> JobOptions {
    JobOptions {
        mode: Mode::Hybrid,
        buffer_messages: buffer as u64,
        trace: false,
        max_supersteps: 0,
    }
}

/// Wire counters snapshotted off a server after a scripted exchange.
struct WireCost {
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// Runs the scripted single-job exchange (register, submit, fetch,
/// shutdown) against a 1-engine gateway over the given transport.
fn run_gateway_once(
    g: &Graph,
    workers: usize,
    buffer: usize,
    connect: impl FnOnce(&GatewayServer) -> (GatewayClient, hybridgraph_gateway::ServerHandle),
) -> (JobOutcome, WireCost) {
    let server = GatewayServer::new(EnginePool::new(svc_cfg(), 1), GatewayConfig::default());
    let (mut client, handle) = connect(&server);
    client
        .register_graph("g", g, workers, 1, CodecChoice::None)
        .expect("register");
    let job = client
        .submit(
            "g",
            ProgramSpec::PageRank {
                supersteps: SUPERSTEPS,
            },
            options(buffer),
        )
        .expect("submit");
    let outcome = client.fetch(job).expect("fetch");
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();
    let m = server.metrics();
    (
        outcome,
        WireCost {
            frames_in: m.frames_in(),
            frames_out: m.frames_out(),
            bytes_in: m.bytes_in(),
            bytes_out: m.bytes_out(),
        },
    )
}

/// A report row built from a wire outcome instead of engine metrics.
fn outcome_row(label: impl Into<String>, o: &JobOutcome) -> BenchRow {
    BenchRow {
        label: label.into(),
        modeled_secs: o.modeled_secs,
        wall_secs: 0.0,
        physical_bytes: o.physical_bytes,
        logical_bytes: o.logical_bytes,
        supersteps: o.supersteps,
        switch_decisions: o.switches.clone(),
        extra: Vec::new(),
    }
}

fn wire_extras(row: BenchRow, w: &WireCost) -> BenchRow {
    row.with_extra("wire_frames_in", w.frames_in as f64)
        .with_extra("wire_frames_out", w.frames_out as f64)
        .with_extra("wire_bytes_in", w.bytes_in as f64)
        .with_extra("wire_bytes_out", w.bytes_out as f64)
}

/// Tenant names chosen so a 4-engine pool places one on each engine:
/// the first `t<i>` probing onto each engine index, engine order.
fn spread_tenant_names() -> Vec<String> {
    let probe = EnginePool::new(svc_cfg(), TENANTS);
    (0..TENANTS)
        .map(|e| {
            (0..)
                .map(|i| format!("t{i}"))
                .find(|name| probe.placement(name) == e)
                .unwrap()
        })
        .collect()
}

/// Runs both sweeps and writes `BENCH_gateway.json`.
pub fn run(scale: Scale) {
    let d = Dataset::LiveJ;
    let g = scale.build(d);
    let workers = workers_for(d);
    let buffer = buffer_for(d, scale);

    println!(
        "## gateway: transport overhead (direct / loopback / tcp) and \
         {}-tenant dispatch over {:?}-engine pools",
        TENANTS, ENGINE_COUNTS
    );

    let mut report = BenchReport::new("gateway", scale.0);

    // --- Part 1: transport overhead -------------------------------
    let direct_svc = EnginePool::new(svc_cfg(), 1);
    direct_svc
        .register_graph("g", scale.build(d), GraphSpec::new(workers))
        .expect("register");
    let direct = direct_svc
        .submit(
            Arc::new(PageRank::new(SUPERSTEPS)),
            JobRequest::new(
                "g",
                JobConfig::new(Mode::Hybrid, workers).with_buffer(buffer),
            ),
        )
        .expect("admit")
        .wait()
        .expect("direct job failed");
    let direct_values = encode_values(&direct.values);
    let direct_audits = encode_qt_audits(&direct.metrics.qt_audit);

    let (loop_out, loop_wire) = run_gateway_once(&g, workers, buffer, |server| {
        let transport = LoopbackTransport::new();
        let handle = server.serve(transport.clone());
        let client = GatewayClient::connect_loopback(&transport).expect("connect");
        (client, handle)
    });
    assert_eq!(
        loop_out.values, direct_values,
        "gateway-over-loopback values must be byte-identical to direct submission"
    );
    assert_eq!(
        loop_out.audits, direct_audits,
        "gateway-over-loopback audits must be byte-identical to direct submission"
    );

    let (tcp_out, tcp_wire) = run_gateway_once(&g, workers, buffer, |server| {
        let transport = Arc::new(TcpTransport::bind("127.0.0.1:0").expect("bind"));
        let addr = transport.local_addr();
        let handle = server.serve(transport);
        let client = GatewayClient::connect_tcp(addr).expect("connect");
        (client, handle)
    });
    assert_eq!(tcp_out.values, direct_values, "tcp values diverged");
    assert_eq!(tcp_out.audits, direct_audits, "tcp audits diverged");
    assert_eq!(
        (loop_wire.frames_in, loop_wire.bytes_in, loop_wire.bytes_out),
        (tcp_wire.frames_in, tcp_wire.bytes_in, tcp_wire.bytes_out),
        "the frame layer is transport-agnostic: loopback and tcp wire \
         costs must match"
    );

    let mut t = Table::new(
        "one PageRank job, three submission paths (identical results)",
        &[
            "path", "modeled", "physical", "wire in", "wire out", "frames",
        ],
    );
    t.row(vec![
        "direct".into(),
        secs(direct.metrics.modeled_total_secs()),
        bytes(direct.metrics.total_io_bytes()),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    for (label, o, w) in [
        ("loopback", &loop_out, &loop_wire),
        ("tcp", &tcp_out, &tcp_wire),
    ] {
        t.row(vec![
            label.into(),
            secs(o.modeled_secs),
            bytes(o.physical_bytes),
            bytes(w.bytes_in),
            bytes(w.bytes_out),
            format!("{}+{}", w.frames_in, w.frames_out),
        ]);
    }
    t.print();
    println!(
        "values + audits byte-identical on all three paths; loopback and \
         tcp moved identical wire bytes\n"
    );

    report.push(BenchRow::deterministic("overhead/direct", &direct.metrics));
    report.push(wire_extras(
        outcome_row("overhead/loopback", &loop_out),
        &loop_wire,
    ));
    report.push(wire_extras(
        outcome_row("overhead/tcp", &tcp_out),
        &tcp_wire,
    ));

    // --- Part 2: multi-engine dispatch ----------------------------
    let names = spread_tenant_names();
    let tenant_graphs: Vec<Graph> = (0..TENANTS).map(|_| scale.build(d)).collect();

    let mut t = Table::new(
        "batch of 4 tenants vs pool width (modeled makespan)",
        &["engines", "makespan", "sum modeled", "physical", "speedup"],
    );
    let mut solo_makespan = 0.0f64;
    for &engines in ENGINE_COUNTS {
        let server = GatewayServer::new(
            EnginePool::new(svc_cfg(), engines),
            GatewayConfig::default(),
        );
        let transport = LoopbackTransport::new();
        let handle = server.serve(transport.clone());
        let mut client = GatewayClient::connect_loopback(&transport).expect("connect");
        for (name, tg) in names.iter().zip(&tenant_graphs) {
            client
                .register_graph(name, tg, workers, 1, CodecChoice::None)
                .expect("register");
        }
        let jobs = client
            .submit_batch(
                names
                    .iter()
                    .map(|name| SubmitReq {
                        graph: name.clone(),
                        program: ProgramSpec::PageRank {
                            supersteps: SUPERSTEPS,
                        },
                        options: options(buffer),
                    })
                    .collect(),
            )
            .expect("batch");
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .map(|&id| client.fetch(id).expect("fetch"))
            .collect();
        client.shutdown().expect("shutdown");
        drop(client);
        handle.join();

        // Engines share nothing: the pool's makespan is the max over
        // engines of the modeled seconds its tenants consume.
        let mut per_engine = vec![0.0f64; engines];
        for (name, o) in names.iter().zip(&outcomes) {
            per_engine[server.pool().placement(name)] += o.modeled_secs;
        }
        let makespan = per_engine.iter().cloned().fold(0.0, f64::max);
        let sum: f64 = outcomes.iter().map(|o| o.modeled_secs).sum();
        let physical: u64 = outcomes.iter().map(|o| o.physical_bytes).sum();
        if engines == 1 {
            solo_makespan = makespan;
        }
        t.row(vec![
            engines.to_string(),
            secs(makespan),
            secs(sum),
            bytes(physical),
            format!("{:.2}x", solo_makespan / makespan),
        ]);

        let mut summary = BenchRow {
            label: format!("tenants/e{engines}"),
            modeled_secs: makespan,
            wall_secs: 0.0,
            physical_bytes: physical,
            logical_bytes: outcomes.iter().map(|o| o.logical_bytes).sum(),
            supersteps: outcomes.iter().map(|o| o.supersteps).sum(),
            switch_decisions: Vec::new(),
            extra: Vec::new(),
        };
        summary.extra.push(("engines".into(), engines as f64));
        summary.extra.push(("sum_modeled_secs".into(), sum));
        report.push(summary);
        for (name, o) in names.iter().zip(&outcomes) {
            report.push(
                outcome_row(format!("tenants/e{engines}/{name}"), o)
                    .with_extra("engine", server.pool().placement(name) as f64),
            );
        }
    }
    t.print();

    report.write_announced();
}
