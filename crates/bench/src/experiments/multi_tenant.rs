//! `multi_tenant` — concurrent jobs on one `GraphService`, and what the
//! shared gather cache does to their switch decisions.
//!
//! The setup registers `k` identically-sized copies of the scaled LiveJ
//! stand-in and runs one hybrid PageRank job per copy, all forced to
//! start in push (as `observe` does). The service's shared edge cache is
//! sized to hold roughly **1.2× one graph's adjacency** — a solo job
//! warms it in its first push superstep and from then on reads edges at
//! memory cost, so its measured `IO(E_push)` collapses and `Q_t` keeps
//! favouring push. With two or more tenants the cache thrashes: each
//! job's supersteps evict its neighbours' extents (the deterministic
//! round-robin interleaves them superstep by superstep), misses return,
//! `IO(E_push)` recovers its full weight, and the same job on the same
//! graph makes a *different* switch decision than it did solo. That
//! Q_t flip — pure cross-job cache interference, byte-identically
//! replayable under the service scheduler — is what the experiment
//! surfaces, audit table included.
//!
//! Also emits `BENCH_multi_tenant.json` (one row per job per sweep
//! point) for machine consumption.

use crate::report::{BenchReport, BenchRow};
use crate::table::{bytes, secs, Table};
use crate::{workers_for, Scale};
use hybridgraph_algos::PageRank;
use hybridgraph_core::{JobConfig, JobMetrics, Mode};
use hybridgraph_graph::{Dataset, Partition, VertexId, WorkerId};
use hybridgraph_obs::render_table;
use hybridgraph_service::{GraphService, GraphSpec, JobRequest, ServiceConfig};
use hybridgraph_storage::CACHE_ENTRY_OVERHEAD;
use std::sync::Arc;

/// Superstep budget of each PageRank job.
const SUPERSTEPS: u64 = 5;

/// Swept concurrent-job counts (first entry is the solo baseline).
const JOB_COUNTS: &[usize] = &[1, 2, 4];

/// Runs the sweep and writes `BENCH_multi_tenant.json`.
pub fn run(scale: Scale) {
    let d = Dataset::LiveJ;
    let g = scale.build(d);
    let workers = workers_for(d);
    // One graph's cacheable adjacency: every edge extent plus per-entry
    // bookkeeping. 1.2x means a solo tenant fits with room to spare and
    // any second tenant forces evictions.
    // The cache splits its budget evenly across worker shards, but range
    // partitions carry uneven edge bytes — size every shard for the
    // *heaviest* partition (x1.2) so a solo tenant fits entirely, while
    // any second tenant doubles the working set and must evict.
    let partition = Partition::range(g.num_vertices(), workers);
    let max_shard = (0..workers)
        .map(|w| {
            partition
                .worker_range(WorkerId::from(w))
                .map(|v| match g.out_degree(VertexId(v)) {
                    0 => 0,
                    deg => deg as u64 * 8 + CACHE_ENTRY_OVERHEAD as u64,
                })
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    let cache_bytes = (max_shard + max_shard / 5) as usize * workers;
    // A buffer in the band where the Q_t sign is cache-decided: large
    // enough that push's spill term IO(M_disk) no longer dominates Eq. 11
    // on its own (the default limited-memory buffer forces every run to
    // b-pull regardless of cache state), small enough that spills plus a
    // *thrashed* cache's full IO(E_push) still clear the switch gate.
    // 13 M messages at paper scale lands mid-band at the default 1/2000.
    let buffer = scale.down(13_000_000, 64);

    println!(
        "## multi_tenant: {} hybrid PageRank tenants on {d:?} copies, shared {} cache",
        JOB_COUNTS
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        bytes(cache_bytes as u64),
    );

    let mut report = BenchReport::new("multi_tenant", scale.0);
    let mut t = Table::new(
        "per-job effect of cross-tenant cache interference",
        &[
            "jobs",
            "job",
            "modeled",
            "physical",
            "logical",
            "hits",
            "misses",
            "evict",
            "mode sequence",
        ],
    );
    let mut audits: Vec<(String, JobMetrics)> = Vec::new();

    for &k in JOB_COUNTS {
        let service = GraphService::new(ServiceConfig {
            max_resident_jobs: k,
            max_queued_jobs: k,
            cache_bytes,
            cache_slots: workers,
            seed: 42,
            max_job_logical_io: None,
            max_job_memory: None,
            recovery_shed_threshold: 8,
        });
        for i in 0..k {
            service
                .register_graph(&format!("g{i}"), scale.build(d), GraphSpec::new(workers))
                .expect("register");
        }
        // Batch submission under a scheduling pause: the whole multi-job
        // schedule is a pure function of the batch and the seed.
        let pause = service.pause_scheduling();
        let tickets: Vec<_> = (0..k)
            .map(|i| {
                let mut cfg = JobConfig::new(Mode::Hybrid, workers).with_buffer(buffer);
                cfg.initial_mode_override = Some(Mode::Push);
                service
                    .submit(
                        Arc::new(PageRank::new(SUPERSTEPS)),
                        JobRequest::new(format!("g{i}"), cfg),
                    )
                    .expect("admit")
            })
            .collect();
        drop(pause);
        for (i, ticket) in tickets.into_iter().enumerate() {
            let m = ticket.wait().expect("job failed").metrics;
            let label = format!("{k}-jobs/job{i}");
            let seq: Vec<&str> = m.steps.iter().map(|s| s.kind.label()).collect();
            let evictions: u64 = m.steps.iter().map(|s| s.cache_evictions).sum();
            t.row(vec![
                k.to_string(),
                i.to_string(),
                secs(m.modeled_total_secs()),
                bytes(m.total_io_bytes()),
                bytes(m.total_io_logical_bytes()),
                m.total_cache_hits().to_string(),
                m.total_cache_misses().to_string(),
                evictions.to_string(),
                seq.join(" "),
            ]);
            report.push(
                BenchRow::deterministic(&label, &m)
                    .with_extra("cache_hits", m.total_cache_hits() as f64)
                    .with_extra("cache_misses", m.total_cache_misses() as f64)
                    .with_extra("cache_evictions", evictions as f64),
            );
            if i == 0 {
                audits.push((label, m));
            }
        }
    }
    t.print();

    // Surface the Q_t flip: job0 runs the same program on the same graph
    // at every sweep point; only the neighbours differ. Compare its
    // audited decisions against the solo baseline.
    let (solo_label, solo) = &audits[0];
    let solo_decisions = decisions(solo);
    let mut flips = 0usize;
    for (label, m) in &audits[1..] {
        let these = decisions(m);
        let changed = these != solo_decisions;
        if changed {
            flips += 1;
        }
        println!(
            "{label} vs {solo_label}: decisions {} (solo {:?} vs {:?})",
            if changed { "CHANGED" } else { "identical" },
            solo_decisions,
            these,
        );
    }
    println!(
        "\nQ_t flips from shared-cache interference: {flips} of {} contended sweep points",
        audits.len() - 1
    );
    println!("\n# audit, {solo_label} (cache warm after first push step):");
    println!("{}", render_table(&solo.qt_audit));
    let (label, contended) = &audits[1];
    println!("# audit, {label} (neighbour evictions restore IO(E_push)):");
    println!("{}", render_table(&contended.qt_audit));

    report.write_announced();
}

/// A job's audited decision sequence: `(t, mode_after)` per evaluation.
fn decisions(m: &JobMetrics) -> Vec<(u64, &'static str)> {
    m.qt_audit
        .iter()
        .map(|a| (a.superstep, a.mode_after))
        .collect()
}
