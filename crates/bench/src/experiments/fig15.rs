//! Fig. 15 — scalability: PageRank with pushM vs hybrid while the number
//! of computational nodes shrinks from 30 to 10. Fewer nodes mean more
//! data (and more spilled messages) per node: pushM degrades
//! super-linearly, hybrid sub-linearly.

use crate::table::{secs, Table};
use crate::{buffer_for, report_secs, run_algo, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::Dataset;

/// Prints Fig. 15 (a) pushM and (b) hybrid.
pub fn run(scale: Scale) {
    let workers = [10usize, 15, 20, 25, 30];
    for mode in [Mode::PushM, Mode::Hybrid] {
        let mut headers = vec!["graph"];
        let labels: Vec<String> = workers.iter().map(|w| format!("T={w}")).collect();
        headers.extend(labels.iter().map(|s| s.as_str()));
        let mut t = Table::new(
            &format!(
                "Fig 15 — PageRank runtime (s, projected) vs nodes, {}",
                mode.label()
            ),
            &headers,
        );
        for d in Dataset::ALL {
            let g = scale.build(d);
            let mut cells = vec![d.name().to_string()];
            for &w in &workers {
                let cfg = JobConfig::new(mode, w).with_buffer(buffer_for(d, scale));
                let m = run_algo(Algo::PageRank, &g, cfg);
                cells.push(secs(report_secs(Algo::PageRank, &m, scale)));
            }
            t.row(cells);
        }
        t.print();
    }
}
