//! Theorem 1 and Theorem 2 — empirical verification tables.
//!
//! Theorem 1: the expected number of VE-BLOCK fragments grows with the
//! Vblock count `V`. Theorem 2: on a broadcast-all workload, whenever the
//! cluster-wide buffer `B ≤ B⊥ = |E|/2 − f`, push's I/O bytes are at
//! least b-pull's.

use crate::table::{bytes, Table};
use crate::{run_algo, Algo, Scale};
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::{partition::vblock_counts, BlockLayout, Dataset, Partition, WorkerId};
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::MemVfs;

/// Theorem 1: fragments vs V over `livej`.
pub fn theorem1(scale: Scale) {
    let g = scale.build(Dataset::LiveJ);
    let p = Partition::range(g.num_vertices(), 5);
    let mut t = Table::new(
        "Theorem 1 — fragments grow with V (livej)",
        &["Vblocks/worker", "total V", "fragments", "frag/|E|"],
    );
    for per in [1usize, 2, 4, 8, 16, 32, 64] {
        let layout = BlockLayout::uniform(&p, per);
        let vfs = MemVfs::new();
        let mut frags = 0u64;
        for w in 0..5 {
            frags += VeBlockStore::build(&vfs, &g, &layout, WorkerId::from(w))
                .unwrap()
                .total_fragments();
        }
        t.row(vec![
            per.to_string(),
            layout.num_blocks().to_string(),
            frags.to_string(),
            format!("{:.3}", frags as f64 / g.num_edges() as f64),
        ]);
    }
    t.print();
}

/// Theorem 2: sweep B around B⊥ on PageRank (broadcast-all) and compare
/// measured per-superstep I/O bytes of push vs b-pull.
pub fn theorem2(scale: Scale) {
    let d = Dataset::LiveJ;
    let g = scale.build(d);
    let workers = 5usize;
    // Determine f for the Eq.5-sized layout at each buffer setting.
    let mut t = Table::new(
        "Theorem 2 — B vs B⊥ and measured Cio (PageRank over livej)",
        &[
            "B (msgs, cluster)",
            "B⊥",
            "B<=B⊥",
            "io push",
            "io b-pull",
            "push>=b-pull",
        ],
    );
    let m_edges = g.num_edges() as u64;
    for per_worker_buf in [64usize, 256, 1024, 4096, 16384, 65536] {
        let b_total = (per_worker_buf * workers) as u64;
        let p = Partition::range(g.num_vertices(), workers);
        let counts = vblock_counts(&g, &p, per_worker_buf, true);
        let layout = BlockLayout::new(&p, &counts);
        let vfs = MemVfs::new();
        let mut f = 0u64;
        for w in 0..workers {
            f += VeBlockStore::build(&vfs, &g, &layout, WorkerId::from(w))
                .unwrap()
                .total_fragments();
        }
        let b_lower = hybridgraph_core::b_lower_bound(m_edges, f);

        let push = run_algo(
            Algo::PageRank,
            &g,
            JobConfig::new(Mode::Push, workers).with_buffer(per_worker_buf),
        );
        let bpull = run_algo(
            Algo::PageRank,
            &g,
            JobConfig::new(Mode::BPull, workers).with_buffer(per_worker_buf),
        );
        let io_push = push.total_io_bytes();
        let io_bpull = bpull.total_io_bytes();
        t.row(vec![
            b_total.to_string(),
            b_lower.to_string(),
            ((b_total as i64) <= b_lower).to_string(),
            bytes(io_push),
            bytes(io_bpull),
            (io_push >= io_bpull).to_string(),
        ]);
    }
    t.print();
}

/// Prints both theorem tables.
pub fn run(scale: Scale) {
    theorem1(scale);
    theorem2(scale);
}
