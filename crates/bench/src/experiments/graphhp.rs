//! `graphhp` — GraphHP-style hybrid sync/async execution vs strict BSP.
//!
//! Two headline claims, both asserted:
//!
//! 1. **PageRank barrier cut.** On an id-localized RMAT graph (community
//!    structure in the id space, the partition-friendly shape GraphHP's
//!    pseudo-rounds exploit) tolerance-terminated PageRank under
//!    `Mode::Async` reaches the same fixed point as strict push — every
//!    per-vertex gap within 100× the 1e-9 tolerance — while crossing at
//!    least 30% fewer global barriers: interior vertices iterate in
//!    place between barriers, so each superstep makes several rounds of
//!    progress.
//!
//! 2. **LPA oscillation breaking.** Synchronous LPA oscillates on
//!    strongly clustered graphs (two communities keep swapping labels in
//!    lock-step) and burns its whole superstep budget; the async
//!    engine's in-block Gauss–Seidel order breaks the symmetry and
//!    converges to a genuine fixed point (final residual 0) in a handful
//!    of barriers. Labels may legitimately differ at the oscillating
//!    vertices — both runs end at valid fixed points — so the report
//!    carries the agreement fraction instead of asserting equality.
//!
//! The graphs are generated, seeded and fixed-size, so the emitted
//! `BENCH_graphhp.json` (wall-clock zeroed) is byte-identical run to
//! run; CI re-runs the experiment and diffs the committed report.

use crate::report::{BenchReport, BenchRow};
use crate::table::Table;
use crate::Scale;
use hybridgraph_algos::{Lpa, PageRank};
use hybridgraph_core::{run_job, JobConfig, JobMetrics, Mode};
use hybridgraph_graph::{gen, Graph};
use std::sync::Arc;

/// PageRank convergence tolerance.
const EPS: f64 = 1e-9;
/// PageRank superstep cap (strict BSP needs ~90 supersteps at `EPS`).
const PR_CAP: u64 = 300;
/// LPA superstep cap (synchronous LPA oscillates and hits it).
const LPA_CAP: u64 = 200;
/// Workers for every run.
const WORKERS: usize = 2;

/// The localized RMAT the PageRank comparison runs on: RMAT skew with
/// 90% of edges rewired into a ±60-id window.
fn pagerank_graph() -> Graph {
    gen::localize(
        &gen::rmat(1024, 8192, gen::RmatParams::default(), 11),
        0.9,
        60,
        7,
    )
}

/// The strongly clustered variant LPA oscillates on: 97% of edges
/// rewired into a tight ±30-id window.
fn lpa_graph() -> Graph {
    gen::localize(
        &gen::rmat(1024, 8192, gen::RmatParams::default(), 11),
        0.97,
        30,
        7,
    )
}

/// Runs the comparison and writes `BENCH_graphhp.json`.
pub fn run(scale: Scale) {
    println!(
        "## graphhp: hybrid sync/async pseudo-rounds vs strict BSP \
         (localized RMAT, {WORKERS} workers)"
    );

    let mut report = BenchReport::new("graphhp", scale.0);
    let mut t = Table::new(
        "global barriers to convergence (async must cut ≥30%)",
        &[
            "algorithm",
            "mode",
            "barriers",
            "saved",
            "pseudo-rounds",
            "interior",
            "converged",
        ],
    );

    // PageRank: same fixed point, ≥30% fewer barriers.
    let g = pagerank_graph();
    let pr = PageRank::until(EPS, PR_CAP);
    let bsp = run_job(
        Arc::new(pr.clone()),
        &g,
        JobConfig::new(Mode::Push, WORKERS),
    )
    .unwrap();
    let asy = run_job(Arc::new(pr), &g, JobConfig::new(Mode::Async, WORKERS)).unwrap();
    let max_gap = asy
        .values
        .iter()
        .zip(&bsp.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        max_gap <= 100.0 * EPS,
        "async PageRank drifted from the BSP fixed point: gap {max_gap}"
    );
    let (bsp_barriers, asy_barriers) = (barriers(&bsp.metrics), barriers(&asy.metrics));
    assert!(
        asy_barriers * 10 <= bsp_barriers * 7,
        "async must cut ≥30% of PageRank barriers: {asy_barriers} vs {bsp_barriers}"
    );
    table_row(&mut t, "PageRank", "push", &bsp.metrics, true);
    table_row(&mut t, "PageRank", "async", &asy.metrics, true);
    report.push(bench_row("pagerank/push", &bsp.metrics));
    report.push(bench_row("pagerank/async", &asy.metrics).with_extra("max_value_gap", max_gap));
    println!(
        "PageRank(eps={EPS}): push {bsp_barriers} barriers, async {asy_barriers} \
         ({:.1}% cut), max value gap {max_gap:.3e}",
        cut_pct(bsp_barriers, asy_barriers)
    );

    // LPA: synchronous oscillation vs async fixed point.
    let g = lpa_graph();
    let lpa = Lpa::converging(LPA_CAP);
    let bsp = run_job(
        Arc::new(lpa.clone()),
        &g,
        JobConfig::new(Mode::Push, WORKERS),
    )
    .unwrap();
    let asy = run_job(Arc::new(lpa), &g, JobConfig::new(Mode::Async, WORKERS)).unwrap();
    let asy_fixed = asy.metrics.steps.last().unwrap().max_residual == 0.0;
    assert!(asy_fixed, "async LPA must end at a fixed point");
    let (bsp_barriers, asy_barriers) = (barriers(&bsp.metrics), barriers(&asy.metrics));
    assert!(
        asy_barriers * 10 <= bsp_barriers * 7,
        "async must cut ≥30% of LPA barriers: {asy_barriers} vs {bsp_barriers}"
    );
    let agree = asy
        .values
        .iter()
        .zip(&bsp.values)
        .filter(|(a, b)| a == b)
        .count();
    let bsp_fixed = bsp.metrics.steps.last().unwrap().max_residual == 0.0;
    table_row(&mut t, "LPA", "push", &bsp.metrics, bsp_fixed);
    table_row(&mut t, "LPA", "async", &asy.metrics, asy_fixed);
    report.push(
        bench_row("lpa/push", &bsp.metrics)
            .with_extra("reached_fixed_point", if bsp_fixed { 1.0 } else { 0.0 }),
    );
    report.push(
        bench_row("lpa/async", &asy.metrics)
            .with_extra("reached_fixed_point", 1.0)
            .with_extra("label_agreement", agree as f64 / asy.values.len() as f64),
    );
    println!(
        "LPA: push {} barriers ({}), async {asy_barriers} (fixed point), \
         labels agree on {agree}/{} vertices",
        bsp_barriers,
        if bsp_fixed {
            "fixed point"
        } else {
            "oscillating at cap"
        },
        asy.values.len()
    );

    t.print();
    report.write_announced();
}

fn barriers(m: &JobMetrics) -> u64 {
    m.steps.len() as u64
}

fn cut_pct(bsp: u64, asy: u64) -> f64 {
    100.0 * (bsp - asy) as f64 / bsp as f64
}

fn table_row(t: &mut Table, algo: &str, mode: &str, m: &JobMetrics, converged: bool) {
    t.row(vec![
        algo.to_string(),
        mode.to_string(),
        barriers(m).to_string(),
        m.barriers_saved().to_string(),
        m.total_pseudo_rounds().to_string(),
        m.load.interior_vertices.to_string(),
        if converged { "yes".into() } else { "NO".into() },
    ]);
}

fn bench_row(label: &str, m: &JobMetrics) -> BenchRow {
    let row = BenchRow::deterministic(label, m);
    let last = m.steps.last().map_or(0, |s| s.superstep);
    row.with_extra("barriers", barriers(m) as f64)
        .with_extra("barriers_saved", m.barriers_saved() as f64)
        .with_extra("pseudo_rounds", m.total_pseudo_rounds() as f64)
        .with_extra("boundary_vertices", m.load.boundary_vertices as f64)
        .with_extra("interior_vertices", m.load.interior_vertices as f64)
        .with_extra("final_active_fraction", m.active_fraction(last))
}
