//! Fixed-width table printing for the figure harness.

/// A simple left-aligned-first-column table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// A table titled `title` with the given column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&format!("{}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats seconds compactly.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Formats a byte count as a power-of-ten quantity (the paper's figures
/// use 10^10-byte ticks).
pub fn bytes(b: u64) -> String {
    if b >= 10_000_000_000 {
        format!("{:.2}e10", b as f64 / 1e10)
    } else if b >= 1_000_000 {
        format!("{:.1}MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.1}KB", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

/// Formats a ratio.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer"));
        let lines: Vec<&str> = r.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(1234.0), "1234");
        assert_eq!(bytes(500), "500B");
        assert_eq!(bytes(2_500_000), "2.5MB");
        assert_eq!(bytes(25_000_000_000), "2.50e10");
        assert_eq!(ratio(1.234), "1.23");
    }
}
