//! The `repro serve` / `repro client` CLI pair over the gateway.
//!
//! ```text
//! repro serve [--addr HOST:PORT] [--engines N] [--seed S]
//! repro client <addr> register --name G --dataset D [--scale N]
//!              [--workers W] [--vblocks V] [--codec C]
//! repro client <addr> submit --graph G [--algo A] [--steps K]
//!              [--mode M] [--buffer B] [--source V] [--trace] [--watch]
//! repro client <addr> status <job> | watch <job> | fetch <job>
//! repro client <addr> evict <name> | metrics | shutdown
//! ```
//!
//! `serve` binds a TCP gateway (port 0 lets the OS pick; the chosen
//! address is printed as `listening on ADDR` before the accept loop
//! starts) and runs until a client sends `shutdown`. Each `client`
//! invocation opens one connection, performs one command, and prints a
//! deterministic summary — `fetch` includes an FNV-1a hash of the value
//! blob so two runs can be compared without shipping the values.

use hybridgraph_core::Mode;
use hybridgraph_gateway::{
    GatewayClient, GatewayConfig, GatewayServer, JobOptions, JobStatusInfo, ProgramSpec,
    ProgressEvent, TcpTransport,
};
use hybridgraph_service::{EnginePool, ServiceConfig};
use hybridgraph_storage::CodecChoice;
use std::io::Write as _;
use std::sync::Arc;

/// FNV-1a 64 over a byte blob — the printed value fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pulls `--flag value` out of `args`; the flag may repeat (last wins).
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .rposition(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v.parse().map_err(|_| format!("bad {name} value '{v}'")),
        None => Ok(default),
    }
}

/// `repro serve`: a TCP gateway until shutdown.
pub fn serve(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let engines: usize = parse_flag(args, "--engines", 1)?;
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    if engines == 0 {
        return Err("--engines must be at least 1".into());
    }
    let cfg = ServiceConfig {
        seed,
        ..ServiceConfig::default()
    };
    let server = GatewayServer::new(EnginePool::new(cfg, engines), GatewayConfig::default());
    let transport =
        Arc::new(TcpTransport::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?);
    println!("listening on {}", transport.local_addr());
    println!("engines {engines}, seed {seed} — send `client <addr> shutdown` to stop");
    std::io::stdout().flush().ok();
    server.serve(transport).join();
    println!("gateway stopped");
    Ok(())
}

fn connect(addr: &str) -> Result<GatewayClient, String> {
    GatewayClient::connect_tcp(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn parse_job_id(args: &[String]) -> Result<u64, String> {
    args.first()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "expected a job id".to_string())
}

fn program_from(args: &[String]) -> Result<ProgramSpec, String> {
    let algo = flag(args, "--algo").unwrap_or_else(|| "pagerank".to_string());
    let steps: u64 = parse_flag(args, "--steps", 5)?;
    Ok(match algo.as_str() {
        "pagerank" => ProgramSpec::PageRank { supersteps: steps },
        "sssp" => ProgramSpec::Sssp {
            source: parse_flag(args, "--source", 0u32)?,
        },
        "lpa" => ProgramSpec::Lpa { supersteps: steps },
        "wcc" => ProgramSpec::Wcc,
        "sa" => ProgramSpec::Sa {
            ratio: parse_flag(args, "--ratio", 8u32)?,
            seed: parse_flag(args, "--sa-seed", 42u64)?,
        },
        other => {
            return Err(format!(
                "unknown --algo '{other}' (pagerank | sssp | lpa | wcc | sa)"
            ))
        }
    })
}

fn print_event(ev: &ProgressEvent) {
    match ev {
        ProgressEvent::Loaded { modeled_secs } => {
            println!("loaded: modeled {modeled_secs:.6}s");
        }
        ProgressEvent::Superstep {
            superstep,
            mode,
            modeled_secs,
        } => {
            println!(
                "superstep {superstep}: {} ({modeled_secs:.6}s modeled)",
                mode.label()
            );
        }
        ProgressEvent::Done => println!("done"),
        ProgressEvent::Failed { code, message } => {
            println!("failed (job error {code}): {message}");
        }
    }
}

fn print_status(s: &JobStatusInfo) {
    match s {
        JobStatusInfo::Running { supersteps_done } => {
            println!("running: {supersteps_done} supersteps done");
        }
        JobStatusInfo::Done => println!("done"),
        JobStatusInfo::Failed { code, message } => {
            println!("failed (job error {code}): {message}");
        }
    }
}

/// `repro client <addr> <command> [...]`: one connection, one command.
pub fn client(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("client needs <addr>")?;
    let cmd = args.get(1).ok_or("client needs a command")?.as_str();
    let rest = &args[2..];
    let mut c = connect(addr)?;
    match cmd {
        "register" => {
            let name = flag(rest, "--name").ok_or("register needs --name")?;
            let dataset = flag(rest, "--dataset")
                .ok_or("register needs --dataset (livej | wiki | orkut | twi | fri | uk)")?;
            let scale: u64 = parse_flag(rest, "--scale", 2000)?;
            let workers: usize = parse_flag(rest, "--workers", 4)?;
            let vblocks: usize = parse_flag(rest, "--vblocks", 1)?;
            let codec: CodecChoice = flag(rest, "--codec")
                .map(|c| c.parse())
                .transpose()
                .map_err(|_| "bad --codec (none | gaps | block | auto)".to_string())?
                .unwrap_or(CodecChoice::None);
            let (engine, graph_id) = c
                .register_dataset(&name, &dataset, scale, workers, vblocks, codec)
                .map_err(|e| e.to_string())?;
            println!("registered '{name}' ({dataset} at 1/{scale}) on engine {engine} as graph {graph_id}");
        }
        "submit" => {
            let graph = flag(rest, "--graph").ok_or("submit needs --graph")?;
            let mode: Mode = flag(rest, "--mode")
                .map(|m| m.parse())
                .transpose()?
                .unwrap_or(Mode::Hybrid);
            let options = JobOptions {
                mode,
                buffer_messages: parse_flag(rest, "--buffer", u64::MAX)?,
                trace: has_flag(rest, "--trace"),
                max_supersteps: 0,
            };
            let job = c
                .submit(&graph, program_from(rest)?, options)
                .map_err(|e| e.to_string())?;
            println!("job {job}");
            if has_flag(rest, "--watch") {
                let status = c.subscribe(job, print_event).map_err(|e| e.to_string())?;
                print_status(&status);
            }
        }
        "status" => {
            let status = c.status(parse_job_id(rest)?).map_err(|e| e.to_string())?;
            print_status(&status);
        }
        "watch" => {
            let status = c
                .subscribe(parse_job_id(rest)?, print_event)
                .map_err(|e| e.to_string())?;
            print_status(&status);
        }
        "fetch" => {
            let o = c.fetch(parse_job_id(rest)?).map_err(|e| e.to_string())?;
            println!(
                "modeled {:.6}s, {} physical / {} logical bytes, {} supersteps",
                o.modeled_secs, o.physical_bytes, o.logical_bytes, o.supersteps
            );
            if !o.switches.is_empty() {
                println!("switches: {}", o.switches.join(" "));
            }
            println!(
                "values: {:#018x} (fnv1a over the value blob)",
                fnv1a(&o.values)
            );
            println!("audits: {:#018x}", fnv1a(&o.audits));
            if let Some(trace) = &o.trace {
                println!("trace: {} bytes", trace.len());
            }
        }
        "evict" => {
            let name = rest.first().ok_or("evict needs a graph name")?;
            c.evict(name).map_err(|e| e.to_string())?;
            println!("evicted '{name}'");
        }
        "metrics" => {
            print!("{}", c.metrics_text().map_err(|e| e.to_string())?);
        }
        "shutdown" => {
            c.shutdown().map_err(|e| e.to_string())?;
            println!("gateway shutting down");
        }
        other => {
            return Err(format!(
                "unknown client command '{other}' (register | submit | status | \
                 watch | fetch | evict | metrics | shutdown)"
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing_last_wins() {
        let args: Vec<String> = ["--seed", "1", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag(&args, "--seed").as_deref(), Some("7"));
        assert_eq!(parse_flag(&args, "--seed", 0u64), Ok(7));
        assert_eq!(parse_flag(&args, "--engines", 3usize), Ok(3));
        assert!(parse_flag::<u64>(&args, "--seed", 0).is_ok());
    }

    #[test]
    fn program_specs_parse() {
        let args: Vec<String> = ["--algo", "sssp", "--source", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(program_from(&args), Ok(ProgramSpec::Sssp { source: 9 }));
        assert!(program_from(&["--algo".into(), "nope".into()]).is_err());
        assert_eq!(
            program_from(&[]),
            Ok(ProgramSpec::PageRank { supersteps: 5 })
        );
    }
}
