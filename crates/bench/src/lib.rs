//! Reproduction harness for every table and figure in the paper's
//! evaluation (§6 and appendices).
//!
//! The `repro` binary dispatches to one module per experiment in
//! [`experiments`]; shared machinery lives here:
//!
//! * [`Scale`] — all datasets are generated at `1/denominator` of the
//!   paper's sizes (Table 4). Byte counts and modeled times scale
//!   linearly with size, so reported *modeled* seconds are multiplied
//!   back by the denominator to land in the paper's ballpark; the shapes
//!   (who wins, by what factor, where crossovers fall) are what the
//!   reproduction is judged on.
//! * [`Algo`] — the four evaluated algorithms with the paper's superstep
//!   budgets and per-algorithm reporting convention (PageRank and LPA
//!   report per-superstep averages; SSSP and SA run to convergence).
//! * [`run_algo`] — one job run returning its [`JobMetrics`].
//! * [`table`] — fixed-width table printing for the figure output.

pub mod experiments;
pub mod gwcli;
pub mod report;
pub mod table;

use hybridgraph_algos::{Lpa, PageRank, Sa, Sssp};
use hybridgraph_core::{run_job, JobConfig, JobMetrics};
use hybridgraph_graph::{Dataset, Graph, VertexId};
use std::sync::Arc;

/// The dataset scale denominator (paper size / denominator).
#[derive(Copy, Clone, Debug)]
pub struct Scale(pub usize);

impl Scale {
    /// Default scale: 1/2000 of the paper's graphs.
    pub fn default_scale() -> Scale {
        Scale(2000)
    }

    /// Builds a dataset stand-in at this scale.
    pub fn build(&self, d: Dataset) -> Graph {
        d.build_scaled(self.0)
    }

    /// Scales a paper-sized quantity (e.g. a message-buffer size in
    /// messages) down to this run's size, with a floor of `min`.
    pub fn down(&self, paper_quantity: u64, min: u64) -> usize {
        ((paper_quantity / self.0 as u64).max(min)) as usize
    }

    /// Projects a modeled duration at this scale back to paper scale.
    pub fn project_secs(&self, modeled: f64) -> f64 {
        modeled * self.0 as f64
    }
}

/// Paper worker counts: 5 nodes for small graphs, 30 for large — scaled
/// down to 5/10 here to keep thread counts sane (documented substitution).
pub fn workers_for(d: Dataset) -> usize {
    if Dataset::LARGE.contains(&d) {
        10
    } else {
        5
    }
}

/// The paper's limited-memory buffer `B_i` per dataset (§6: 0.5 M
/// messages for small graphs, 1 M for twi, 2 M for fri/uk), scaled.
pub fn buffer_for(d: Dataset, scale: Scale) -> usize {
    let paper = match d {
        Dataset::LiveJ | Dataset::Wiki | Dataset::Orkut => 500_000u64,
        Dataset::Twi => 1_000_000,
        Dataset::Fri | Dataset::Uk => 2_000_000,
    };
    scale.down(paper, 16)
}

/// The four evaluated algorithms.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Algo {
    /// PageRank, 5 supersteps, per-superstep reporting.
    PageRank,
    /// SSSP to convergence.
    Sssp,
    /// LPA, 5 supersteps, per-superstep reporting.
    Lpa,
    /// SA to convergence.
    Sa,
}

impl Algo {
    /// All four, figure order.
    pub const ALL: [Algo; 4] = [Algo::PageRank, Algo::Sssp, Algo::Lpa, Algo::Sa];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::PageRank => "PageRank",
            Algo::Sssp => "SSSP",
            Algo::Lpa => "LPA",
            Algo::Sa => "SA",
        }
    }

    /// True if messages are commutative (pushM applicable).
    pub fn combinable(self) -> bool {
        matches!(self, Algo::PageRank | Algo::Sssp)
    }

    /// True if the paper reports per-superstep averages for it.
    pub fn per_superstep(self) -> bool {
        matches!(self, Algo::PageRank | Algo::Lpa)
    }
}

/// A deterministic SSSP source with high reach: the max-out-degree vertex.
pub fn sssp_source(g: &Graph) -> VertexId {
    g.vertices()
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(VertexId(0))
}

/// Runs one algorithm over `g` under `cfg`, returning the job metrics.
pub fn run_algo(algo: Algo, g: &Graph, cfg: JobConfig) -> JobMetrics {
    run_algo_steps(algo, g, cfg, 5)
}

/// Like [`run_algo`] with an explicit superstep budget for the
/// fixed-budget algorithms (Fig. 2 runs PageRank for 10).
pub fn run_algo_steps(algo: Algo, g: &Graph, cfg: JobConfig, budget: u64) -> JobMetrics {
    match algo {
        Algo::PageRank => {
            run_job(Arc::new(PageRank::new(budget)), g, cfg)
                .expect("job failed")
                .metrics
        }
        Algo::Sssp => {
            run_job(Arc::new(Sssp::new(sssp_source(g))), g, cfg)
                .expect("job failed")
                .metrics
        }
        Algo::Lpa => {
            run_job(Arc::new(Lpa::new(budget)), g, cfg)
                .expect("job failed")
                .metrics
        }
        Algo::Sa => {
            run_job(Arc::new(Sa::new(8, 42)), g, cfg)
                .expect("job failed")
                .metrics
        }
    }
}

/// The headline runtime number for a run: per-superstep average for
/// PageRank/LPA, total for SSSP/SA — projected to paper scale.
pub fn report_secs(algo: Algo, m: &JobMetrics, scale: Scale) -> f64 {
    if algo.per_superstep() {
        scale.project_secs(m.modeled_secs_per_superstep())
    } else {
        scale.project_secs(m.modeled_total_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_core::Mode;

    #[test]
    fn scale_helpers() {
        let s = Scale(1000);
        assert_eq!(s.down(500_000, 16), 500);
        assert_eq!(s.down(1_000, 16), 16);
        assert!((s.project_secs(0.5) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn buffers_match_paper_settings() {
        let s = Scale(1000);
        assert_eq!(buffer_for(Dataset::Wiki, s), 500);
        assert_eq!(buffer_for(Dataset::Twi, s), 1000);
        assert_eq!(buffer_for(Dataset::Uk, s), 2000);
    }

    #[test]
    fn algo_properties() {
        assert!(Algo::PageRank.combinable());
        assert!(!Algo::Lpa.combinable());
        assert!(Algo::PageRank.per_superstep());
        assert!(!Algo::Sssp.per_superstep());
    }

    #[test]
    fn smoke_run_all_algorithms() {
        let g = Dataset::LiveJ.build_scaled(100_000);
        for algo in Algo::ALL {
            let cfg = JobConfig::new(Mode::Hybrid, 2).with_buffer(64);
            let m = run_algo(algo, &g, cfg);
            assert!(m.supersteps() >= 1, "{algo:?}");
        }
    }

    #[test]
    fn source_has_max_degree() {
        let g = hybridgraph_graph::gen::star(10);
        assert_eq!(sssp_source(&g), VertexId(0));
    }
}
