//! CI determinism probe for the gateway over a multi-engine pool.
//!
//! Runs a fixed three-tenant batch through the full client → wire →
//! server → `EnginePool` stack over the loopback transport: three
//! traced hybrid PageRank jobs on a 2-wide pool — two tenants whose
//! names place them on engine 0 (their interleaving inside that engine
//! is seed-decided, and they contend through its small shared cache)
//! and one on engine 1 — batch-submitted under the all-engine pause.
//! The output blob concatenates each job's value bytes, `Q_t` audit
//! bytes and Chrome trace (length-prefixed). The `gateway-determinism`
//! CI job runs this twice per seed and requires the outputs to compare
//! byte-identical with `cmp` — values, audits and traces all at once.
//!
//! Usage: `gateway_trace <seed> <out.bin>`

use hybridgraph_core::Mode;
use hybridgraph_gateway::{
    GatewayClient, GatewayConfig, GatewayServer, JobOptions, LoopbackTransport, ProgramSpec,
    SubmitReq,
};
use hybridgraph_service::{EnginePool, ServiceConfig};
use hybridgraph_storage::CodecChoice;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .expect("usage: gateway_trace <seed> <out.bin>");
    let out = args.next().expect("usage: gateway_trace <seed> <out.bin>");

    let cfg = ServiceConfig {
        seed,
        cache_bytes: 32 * 1024,
        cache_slots: 8,
        ..ServiceConfig::default()
    };
    let pool = EnginePool::new(cfg, 2);
    // Three tenants over two engines: two sharing engine 0 (seed-decided
    // interleaving plus cache contention) and one alone on engine 1
    // (genuine cross-engine dispatch).
    let mut names: Vec<String> = Vec::new();
    for engine in [0usize, 0, 1] {
        let name = (0..)
            .map(|i| format!("t{i}"))
            .find(|n| pool.placement(n) == engine && !names.contains(n))
            .unwrap();
        names.push(name);
    }

    let server = GatewayServer::new(pool, GatewayConfig::default());
    let transport = LoopbackTransport::new();
    let handle = server.serve(transport.clone());
    let mut client = GatewayClient::connect_loopback(&transport).expect("connect");

    use hybridgraph_graph::gen;
    let graphs = [
        gen::rmat(256, 2048, gen::RmatParams::default(), 11),
        gen::uniform(200, 1600, 5),
        gen::rmat(224, 1792, gen::RmatParams::default(), 23),
    ];
    for (i, (name, g)) in names.iter().zip(&graphs).enumerate() {
        let vblocks = if i == 0 { 2 } else { 1 };
        client
            .register_graph(name, g, 3, vblocks, CodecChoice::None)
            .expect("register");
    }

    let options = JobOptions {
        mode: Mode::Hybrid,
        buffer_messages: 2048,
        trace: true,
        max_supersteps: 0,
    };
    let jobs = client
        .submit_batch(
            names
                .iter()
                .map(|name| SubmitReq {
                    graph: name.clone(),
                    program: ProgramSpec::PageRank { supersteps: 4 },
                    options,
                })
                .collect(),
        )
        .expect("batch");

    let mut blob = Vec::new();
    let mut supersteps = Vec::new();
    for &id in &jobs {
        let o = client.fetch(id).expect("fetch");
        for part in [
            &o.values[..],
            &o.audits[..],
            o.trace.as_deref().unwrap().as_bytes(),
        ] {
            blob.extend_from_slice(&(part.len() as u64).to_le_bytes());
            blob.extend_from_slice(part);
        }
        supersteps.push(o.supersteps);
    }
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();

    std::fs::write(&out, &blob).unwrap();
    println!(
        "seed {seed}: jobs {jobs:?} on engines {:?}, {} supersteps, {} blob bytes -> {out}",
        names
            .iter()
            .map(|n| server.pool().placement(n))
            .collect::<Vec<_>>(),
        supersteps
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("+"),
        blob.len(),
    );
}
