//! The perf gate CLI: diff fresh `BENCH_*.json` reports against the
//! committed copies.
//!
//! ```text
//! bench_diff [--tolerance FRAC] <committed.json> <fresh.json> [more pairs...]
//! ```
//!
//! Compares the modeled seconds and physical I/O bytes of every row
//! (matched by label) and fails — exit 1 — when any fresh number exceeds
//! its committed counterpart by more than the tolerance (default 0.10,
//! i.e. +10%). Vanished rows and mismatched experiment names also fail;
//! improvements and new rows are printed as notes. Wall-clock fields
//! are never compared.

use hybridgraph_bench::report::diff::{diff_reports, parse_report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.10f64;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --tolerance value"));
            }
            "--help" | "-h" => usage(""),
            _ => files.push(a),
        }
    }
    if files.is_empty() || !files.len().is_multiple_of(2) {
        usage("expected one or more <committed.json> <fresh.json> pairs");
    }

    let mut failed = false;
    for pair in files.chunks(2) {
        let (committed_path, fresh_path) = (&pair[0], &pair[1]);
        let committed = load(committed_path);
        let fresh = load(fresh_path);
        let outcome = diff_reports(&committed, &fresh, tolerance);
        println!(
            "{}: {} vs {} — {}",
            committed.experiment,
            committed_path,
            fresh_path,
            if outcome.passed() { "OK" } else { "FAILED" }
        );
        print!("{}", outcome.render());
        failed |= !outcome.passed();
    }
    if failed {
        eprintln!("perf gate failed (tolerance {:.0}%)", tolerance * 100.0);
        std::process::exit(1);
    }
}

fn load(path: &str) -> hybridgraph_bench::report::diff::GatedReport {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: read {path}: {e}");
        std::process::exit(2);
    });
    parse_report(&src).unwrap_or_else(|e| {
        eprintln!("error: parse {path}: {e}");
        std::process::exit(2);
    })
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: bench_diff [--tolerance FRAC] <committed.json> <fresh.json> [...]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
