//! The figure/table reproduction harness.
//!
//! ```text
//! repro [--scale N] [--codec C] [--mode M] [--trace F] [--metrics F] \
//!       [--explain-switch] <experiment> [<experiment> ...]
//! repro all
//! repro serve [--addr HOST:PORT] [--engines N] [--seed S]
//! repro client <addr> <command> [flags]
//! ```
//!
//! Experiments: datasets, fig2, fig7, fig8, fig9, fig10, fig11, fig12,
//! fig13, fig14, fig15, fig16, fig17, fig18, table5, vblocks (figs
//! 23–25), fig26, theorems, observe, io_compress, multi_tenant,
//! service_restart, graphhp, gateway.
//!
//! `serve` / `client` are the network front door: `serve` runs a TCP
//! gateway over an [`EnginePool`](hybridgraph_service::EnginePool),
//! `client` speaks the wire protocol to it (see
//! [`hybridgraph_bench::gwcli`]).
//!
//! `--scale N` generates datasets at 1/N of the paper's sizes
//! (default 2000). Modeled runtimes are projected back by ×N.
//!
//! `--codec C` (none | gaps | block | bv | auto) sets the on-disk codec
//! for the `observe` experiment; `io_compress` sweeps all of them
//! regardless.
//!
//! `--mode M` (push | pushM | pull | b-pull | hybrid | async) pins the
//! `observe` experiment to one execution mode instead of the default
//! adaptive hybrid; `async` demonstrates the GraphHP-style pseudo-round
//! engine and its extra gauges in the Prometheus exposition.
//!
//! `--trace F` / `--metrics F` / `--explain-switch` apply to the
//! `observe` experiment: they write a Chrome Trace Event JSON (open in
//! Perfetto / `chrome://tracing`), a Prometheus text exposition, and
//! print the per-superstep `Q_t` decision audit table.

use hybridgraph_bench::experiments as exp;
use hybridgraph_bench::Scale;
use std::path::PathBuf;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "datasets",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "table5",
    "vblocks",
    "fig26",
    "theorems",
    "ablation",
    "observe",
    "io_compress",
    "billion",
    "multi_tenant",
    "service_restart",
    "graphhp",
    "gateway",
];

fn dispatch(name: &str, scale: Scale, observe: &exp::observe::ObserveOpts) -> bool {
    let t = Instant::now();
    match name {
        "datasets" => exp::datasets::run(scale),
        "fig2" => exp::fig2::run(scale),
        "fig7" => exp::overall::fig7(scale),
        "fig8" => exp::overall::fig8(scale),
        "fig9" => exp::overall::fig9(scale),
        "fig10" => exp::overall::fig10(scale),
        "fig11" => exp::prediction::fig11(scale),
        "fig12" => exp::prediction::fig12(scale),
        "fig13" => exp::prediction::fig13(scale),
        "fig14" => exp::fig14::run(scale),
        "fig15" => exp::fig15::run(scale),
        "fig16" => exp::fig16::run(scale),
        "fig17" => exp::fig17_18::fig17(scale),
        "fig18" => exp::fig17_18::fig18(scale),
        "table5" => exp::table5::run(scale),
        "vblocks" | "fig23" | "fig24" | "fig25" => exp::vblocks::run(scale),
        "fig26" => exp::fig26::run(scale),
        "theorems" | "thm1" | "thm2" => exp::theorems::run(scale),
        "trace" => exp::trace::run(scale),
        "ablation" => exp::ablation::run(scale),
        "observe" => exp::observe::run(scale, observe),
        "io_compress" => exp::io_compress::run(scale),
        "billion" => exp::billion::run(scale),
        "multi_tenant" => exp::multi_tenant::run(scale),
        "service_restart" => exp::service_restart::run(scale),
        "graphhp" => exp::graphhp::run(scale),
        "gateway" => exp::gateway::run(scale),
        _ => return false,
    }
    eprintln!("[{name}: {:.1}s]", t.elapsed().as_secs_f64());
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The gateway CLI pair dispatches before experiment parsing: its
    // flags (`--addr`, `--engines`, ...) are not experiment flags.
    match args.first().map(String::as_str) {
        Some("serve") => {
            if let Err(e) = hybridgraph_bench::gwcli::serve(&args[1..]) {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            return;
        }
        Some("client") => {
            if let Err(e) = hybridgraph_bench::gwcli::client(&args[1..]) {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
            return;
        }
        _ => {}
    }
    let mut scale = Scale::default_scale();
    let mut observe = exp::observe::ObserveOpts::default();
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage("missing --scale value"));
                scale = Scale(n.max(1));
            }
            "--trace" => {
                let p = it.next().unwrap_or_else(|| usage("missing --trace path"));
                observe.trace = Some(PathBuf::from(p));
            }
            "--metrics" => {
                let p = it.next().unwrap_or_else(|| usage("missing --metrics path"));
                observe.metrics = Some(PathBuf::from(p));
            }
            "--codec" => {
                let c = it.next().unwrap_or_else(|| usage("missing --codec value"));
                // `CodecChoice::from_str` already enumerates every valid
                // choice in its error; surface it verbatim.
                observe.codec = c.parse().unwrap_or_else(|e: String| usage(&e));
            }
            "--mode" => {
                let m = it.next().unwrap_or_else(|| usage("missing --mode value"));
                // `Mode::from_str` already enumerates every valid mode in
                // its error; surface it verbatim.
                observe.mode = Some(m.parse().unwrap_or_else(|e: String| usage(&e)));
            }
            "--explain-switch" => observe.explain_switch = true,
            "all" => targets.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(""),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage("no experiment given");
    }
    println!("# HybridGraph reproduction harness — scale 1/{}\n", scale.0);
    for t in targets {
        if !dispatch(&t, scale, &observe) {
            usage(&format!("unknown experiment '{t}'"));
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--scale N] [--codec C] [--mode M] [--trace F] \
         [--metrics F] [--explain-switch] <experiment> [...] | all"
    );
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use hybridgraph_core::Mode;
    use hybridgraph_storage::CodecChoice;

    /// The `--mode` flag surfaces `Mode::from_str`'s error verbatim, so
    /// a typo must name the offender and list every valid mode.
    #[test]
    fn mode_parse_error_lists_all_modes() {
        let err = "asink".parse::<Mode>().unwrap_err();
        assert!(err.contains("unknown mode 'asink'"), "{err}");
        for label in Mode::ALL.iter().map(|m| m.label()).chain(["async"]) {
            assert!(err.contains(label), "error must list '{label}': {err}");
        }
    }

    /// Every accepted spelling round-trips to the mode whose label the
    /// error message advertises.
    #[test]
    fn mode_parse_accepts_all_labels() {
        for mode in Mode::ALL.into_iter().chain([Mode::Async]) {
            assert_eq!(mode.label().parse::<Mode>(), Ok(mode));
        }
        assert_eq!("bpull".parse::<Mode>(), Ok(Mode::BPull));
        assert_eq!("pushm".parse::<Mode>(), Ok(Mode::PushM));
    }

    /// Same contract for `--codec`: the `CodecChoice::from_str` error
    /// names the offender and lists every valid choice, including `bv`.
    #[test]
    fn codec_parse_error_lists_all_choices() {
        let err = "zstd".parse::<CodecChoice>().unwrap_err();
        assert!(err.contains("unknown codec 'zstd'"), "{err}");
        for codec in CodecChoice::ALL {
            let label = codec.label();
            assert!(err.contains(label), "error must list '{label}': {err}");
        }
    }

    /// Every advertised label round-trips to its choice.
    #[test]
    fn codec_parse_accepts_all_labels() {
        for codec in CodecChoice::ALL {
            assert_eq!(codec.label().parse::<CodecChoice>(), Ok(codec));
        }
    }
}
