//! CI determinism probe for the GraphHP-style async engine.
//!
//! Runs one tolerance-terminated async PageRank job on an id-localized
//! RMAT graph derived from the given seed and writes the modeled-time
//! Chrome trace followed by the `Q_t` audit bytes (async extension
//! included) and the final value bits. The `graphhp-determinism` CI job
//! runs this twice per seed and requires the outputs to compare
//! byte-identical with `cmp`.
//!
//! Usage: `async_trace <seed> <out.bin>`

use hybridgraph_algos::PageRank;
use hybridgraph_core::{encode_qt_audits, run_job, JobConfig, Mode};
use hybridgraph_graph::gen;
use hybridgraph_obs::{export_chrome_trace, TraceSink};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .expect("usage: async_trace <seed> <out.bin>");
    let out = args.next().expect("usage: async_trace <seed> <out.bin>");

    // Locality gives the pseudo-rounds interior vertices to chew on; the
    // rewiring seed is decorrelated from the RMAT seed so the two sweeps
    // don't share SplitMix64 streams.
    let g = gen::localize(
        &gen::rmat(512, 4096, gen::RmatParams::default(), seed),
        0.9,
        48,
        seed ^ 0x9e37_79b9,
    );
    let sink = Arc::new(TraceSink::new(3));
    let cfg = JobConfig::new(Mode::Async, 3)
        .with_buffer(512)
        .with_trace(Arc::clone(&sink));
    let r = run_job(Arc::new(PageRank::until(1e-8, 120)), &g, cfg).unwrap();

    let mut blob = export_chrome_trace(&sink).into_bytes();
    blob.extend_from_slice(&encode_qt_audits(&r.metrics.qt_audit));
    for v in &r.values {
        blob.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    std::fs::write(&out, &blob).unwrap();
    println!(
        "seed {seed}: {} barriers (+{} saved), {} bytes -> {out}",
        r.metrics.supersteps(),
        r.metrics.barriers_saved(),
        blob.len(),
    );
}
