//! CI determinism probe for the multi-tenant `GraphService`.
//!
//! Runs a fixed two-tenant batch (hybrid PageRank on two different
//! graphs, batch-submitted under a scheduling pause so the first grant
//! is seed-decided) and writes the combined per-job Chrome trace to a
//! file. The `service-determinism` CI job runs this twice per seed and
//! requires the outputs to compare byte-identical with `cmp`.
//!
//! Usage: `service_trace <seed> <out.json>`

use hybridgraph_algos::PageRank;
use hybridgraph_core::{JobConfig, Mode};
use hybridgraph_graph::gen;
use hybridgraph_obs::{export_chrome_trace_jobs, TraceSink};
use hybridgraph_service::{GraphService, GraphSpec, JobRequest, ServiceConfig};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .expect("usage: service_trace <seed> <out.json>");
    let out = args.next().expect("usage: service_trace <seed> <out.json>");

    let svc = GraphService::new(ServiceConfig {
        max_resident_jobs: 2,
        max_queued_jobs: 0,
        // Small enough that the tenants contend through evictions: the
        // trace then witnesses the shared-cache paths, not just the
        // scheduler interleaving.
        cache_bytes: 32 * 1024,
        cache_slots: 8,
        seed,
        max_job_logical_io: None,
        max_job_memory: None,
        recovery_shed_threshold: 8,
    });
    svc.register_graph(
        "a",
        gen::rmat(256, 2048, gen::RmatParams::default(), 11),
        GraphSpec::new(3).with_vblocks(2),
    )
    .unwrap();
    svc.register_graph("b", gen::uniform(200, 1600, 5), GraphSpec::new(3))
        .unwrap();

    let cfg = || {
        let mut cfg = JobConfig::new(Mode::Hybrid, 3).with_buffer(2048);
        cfg.initial_mode_override = Some(Mode::Push);
        cfg
    };
    let sink_a = Arc::new(TraceSink::new(3));
    let sink_b = Arc::new(TraceSink::new(3));
    let pause = svc.pause_scheduling();
    let t_a = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", cfg().with_trace(Arc::clone(&sink_a))),
        )
        .unwrap();
    let t_b = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("b", cfg().with_trace(Arc::clone(&sink_b))),
        )
        .unwrap();
    drop(pause);
    let r_a = t_a.wait().unwrap();
    let r_b = t_b.wait().unwrap();

    let trace = export_chrome_trace_jobs(&[("job-a", &sink_a), ("job-b", &sink_b)]);
    std::fs::write(&out, &trace).unwrap();
    println!(
        "seed {seed}: {} + {} supersteps, {} trace bytes -> {out}",
        r_a.metrics.supersteps(),
        r_b.metrics.supersteps(),
        trace.len(),
    );
}
