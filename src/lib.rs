//! # HybridGraph
//!
//! A from-scratch Rust reproduction of *Hybrid Pulling/Pushing for
//! I/O-Efficient Distributed and Iterative Graph Computing* (Wang, Gu,
//! Bao, Yu & Yu — SIGMOD 2016).
//!
//! HybridGraph is a Pregel-style vertex-centric BSP engine whose graph
//! and message data are disk-resident. It implements the paper's two
//! contributions — **b-pull**, a block-centric pulling mechanism over the
//! VE-BLOCK on-disk layout, and **hybrid**, adaptive per-superstep
//! switching between push and b-pull driven by the `Q_t` cost metric —
//! alongside the three comparison strategies (Giraph-style push,
//! MOCgraph-style pushM, and a disk-extended per-vertex pull).
//!
//! ## Quickstart
//!
//! ```
//! use hybridgraph::prelude::*;
//! use std::sync::Arc;
//!
//! // A scaled stand-in for the paper's LiveJournal graph.
//! let graph = Dataset::LiveJ.build_scaled(20_000);
//! // PageRank for 5 supersteps under the hybrid engine, 4 workers,
//! // limited memory (messages past the buffer spill to disk).
//! let cfg = JobConfig::new(Mode::Hybrid, 4).with_buffer(1_000);
//! let result = run_job(Arc::new(PageRank::new(5)), &graph, cfg).unwrap();
//!
//! assert_eq!(result.values.len(), graph.num_vertices());
//! println!(
//!     "{} supersteps, modeled {:.3}s, {} bytes of I/O",
//!     result.metrics.supersteps(),
//!     result.metrics.modeled_total_secs(),
//!     result.metrics.total_io_bytes(),
//! );
//! ```
//!
//! The crates compose bottom-up: [`obs`] (tracing/metrics sink),
//! [`codec`] (on-disk compression), [`graph`] (model + generators +
//! partitioning), [`storage`] (simulated disk, VE-BLOCK), [`net`]
//! (simulated fabric), [`core`] (the engine), [`algos`] (PageRank,
//! SSSP, LPA, SA, WCC), [`service`] (multi-tenant `GraphService`:
//! register graphs once, run many concurrent deterministic jobs),
//! [`gateway`] (network front door: binary wire protocol, RPC
//! server/client, multi-engine dispatch).

pub use hybridgraph_algos as algos;
pub use hybridgraph_codec as codec;
pub use hybridgraph_core as core;
pub use hybridgraph_gateway as gateway;
pub use hybridgraph_graph as graph;
pub use hybridgraph_net as net;
pub use hybridgraph_obs as obs;
pub use hybridgraph_service as service;
pub use hybridgraph_storage as storage;

/// The common imports for applications.
pub mod prelude {
    pub use hybridgraph_algos::{Lpa, PageRank, Sa, Sssp, Wcc};
    pub use hybridgraph_core::{
        run_job, CheckpointPolicy, FaultPhase, FaultPlan, GraphInfo, JobConfig, JobError,
        JobMetrics, JobResult, MasterKillPoint, Mode, NetOverhead, RecoveryMetrics, Update,
        VertexProgram,
    };
    pub use hybridgraph_gateway::{
        GatewayClient, GatewayConfig, GatewayServer, LoopbackTransport, TcpTransport,
    };
    pub use hybridgraph_graph::{
        Dataset, Edge, Graph, GraphBuilder, Partition, VertexId, WorkerId,
    };
    pub use hybridgraph_net::{LinkFault, NetFaultPlan};
    pub use hybridgraph_obs::{
        export_chrome_trace, export_prometheus, render_table, validate_json, TraceSink,
    };
    pub use hybridgraph_service::{
        AdmissionError, CatalogError, EnginePool, GraphService, GraphSpec, JobRequest,
        RecoveredJob, ServiceConfig,
    };
    pub use hybridgraph_storage::{CodecChoice, DeviceProfile, MemVfs, Vfs};
}
