//! Codec subsystem end-to-end checks:
//!
//! * seeded random round-trip stress over extent and blob-frame coding
//!   (the seed is printed so any failure reproduces from the log alone);
//! * bit-identical engine results across every `CodecChoice` for
//!   push, b-pull and hybrid on PageRank (f64) and SSSP (f32) — the
//!   codec may change what's on disk, never what's computed;
//! * deterministic `Q_t` audits run-to-run under a codec.

use hybridgraph::prelude::*;
use hybridgraph_codec::{
    decode_blob_frame, decode_extent, encode_blob_frame, encode_extent, CodecChoice, ExtentKind,
};
use hybridgraph_graph::gen;
use hybridgraph_graph::rng::SplitMix64;
use std::sync::Arc;

const SEEDS: [u64; 3] = [3, 1776, 0xfeed_f00d];

/// Random edge-extent bytes: sorted u32 destinations (the layout gaps
/// coding exploits) each followed by an f32 weight.
fn random_edges_raw(r: &mut SplitMix64, n: usize) -> Vec<u8> {
    let mut dsts: Vec<u32> = (0..n).map(|_| r.next_u64() as u32 >> 8).collect();
    dsts.sort_unstable();
    let mut raw = Vec::with_capacity(n * 8);
    for d in dsts {
        raw.extend_from_slice(&d.to_le_bytes());
        raw.extend_from_slice(&(r.next_f64() as f32).to_le_bytes());
    }
    raw
}

#[test]
fn extent_roundtrip_stress_printed_seeds() {
    for seed in SEEDS {
        println!("extent stress seed {seed}");
        let mut r = SplitMix64::new(seed);
        for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
            for _ in 0..40 {
                let raw = if r.next_bool() {
                    let n = r.range_usize(0, 500);
                    random_edges_raw(&mut r, n)
                } else {
                    // Structureless noise: must still round-trip via the
                    // raw/block fallback.
                    (0..r.range_usize(0, 4000))
                        .map(|_| r.next_u64() as u8)
                        .collect()
                };
                for kind in [ExtentKind::Edges, ExtentKind::Fragments] {
                    let coded = encode_extent(codec, kind, &raw);
                    let back = decode_extent(kind, &coded, raw.len())
                        .unwrap_or_else(|e| panic!("seed {seed} {codec:?} {kind:?}: {e:?}"));
                    assert_eq!(back, raw, "seed {seed} {codec:?} {kind:?}");
                    assert!(
                        coded.len() <= raw.len() + 1,
                        "seed {seed} {codec:?} {kind:?}: smallest-wins violated"
                    );
                }
            }
        }
    }
}

#[test]
fn blob_frame_roundtrip_stress_printed_seeds() {
    for seed in SEEDS {
        println!("blob stress seed {seed}");
        let mut r = SplitMix64::new(seed);
        for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
            let mut buf = Vec::new();
            let blobs: Vec<Vec<u8>> = (0..30)
                .map(|_| {
                    (0..r.range_usize(0, 1000))
                        .map(|_| {
                            if r.next_bool() {
                                0u8
                            } else {
                                r.next_u64() as u8
                            }
                        })
                        .collect()
                })
                .collect();
            for b in &blobs {
                buf.extend_from_slice(&encode_blob_frame(codec, b));
            }
            // Frames are self-describing: decode the concatenation back.
            let mut pos = 0;
            for (i, want) in blobs.iter().enumerate() {
                let got = decode_blob_frame(&buf, &mut pos)
                    .unwrap_or_else(|e| panic!("seed {seed} {codec:?} frame {i}: {e:?}"));
                assert_eq!(&got, want, "seed {seed} {codec:?} frame {i}");
            }
            assert_eq!(pos, buf.len(), "seed {seed} {codec:?}");
        }
    }
}

fn modes() -> [Mode; 3] {
    [Mode::Push, Mode::BPull, Mode::Hybrid]
}

/// Limited-memory configs so spills, adjacency/VE-BLOCK scans and (for
/// hybrid) switch supersteps all exercise the coded paths.
fn cfg(mode: Mode, codec: CodecChoice) -> JobConfig {
    JobConfig::new(mode, 3).with_buffer(64).with_codec(codec)
}

#[test]
fn pagerank_values_bit_identical_across_codecs() {
    let g = gen::rmat(256, 2048, gen::RmatParams::default(), 11);
    for mode in modes() {
        let baseline: Vec<u64> =
            run_job(Arc::new(PageRank::new(5)), &g, cfg(mode, CodecChoice::None))
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect();
        for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
            let got: Vec<u64> = run_job(Arc::new(PageRank::new(5)), &g, cfg(mode, codec))
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, baseline, "{mode:?} under {codec:?} diverged from None");
        }
    }
}

#[test]
fn sssp_values_bit_identical_across_codecs() {
    let g = gen::rmat(200, 1600, gen::RmatParams::default(), 23);
    let src = VertexId(0);
    for mode in modes() {
        let baseline: Vec<u32> =
            run_job(Arc::new(Sssp::new(src)), &g, cfg(mode, CodecChoice::None))
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect();
        for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
            let got: Vec<u32> = run_job(Arc::new(Sssp::new(src)), &g, cfg(mode, codec))
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, baseline, "{mode:?} under {codec:?} diverged from None");
        }
    }
}

/// The per-superstep `Q_t` audit must be deterministic run-to-run with a
/// codec configured — compression feeds physical bytes into Eq. 11, and
/// those are as reproducible as the uncompressed counters.
#[test]
fn qt_audit_deterministic_run_to_run_under_codec() {
    let g = gen::rmat(256, 2048, gen::RmatParams::default(), 11);
    let run = || {
        run_job(
            Arc::new(PageRank::new(5)),
            &g,
            cfg(Mode::Hybrid, CodecChoice::Gaps),
        )
        .unwrap()
        .metrics
    };
    let (a, b) = (run(), run());
    assert!(!a.qt_audit.is_empty(), "hybrid run must audit Q_t");
    assert_eq!(a.qt_audit, b.qt_audit);
    assert_eq!(a.total_io_bytes(), b.total_io_bytes());
    assert_eq!(a.total_io_logical_bytes(), b.total_io_logical_bytes());
}
