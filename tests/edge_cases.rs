//! Degenerate inputs the engine must survive.

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use std::sync::Arc;

fn all_modes(combinable: bool) -> Vec<Mode> {
    if combinable {
        Mode::ALL.to_vec()
    } else {
        vec![Mode::Push, Mode::Pull, Mode::BPull, Mode::Hybrid]
    }
}

#[test]
fn edgeless_graph_terminates_immediately() {
    let g = Graph::empty(10);
    for mode in all_modes(true) {
        let cfg = JobConfig::new(mode, 3).with_buffer(8);
        let res = hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &g, cfg).unwrap();
        assert_eq!(res.values.len(), 10);
        // Everyone initializes, nobody can send: one or two supersteps.
        assert!(res.metrics.supersteps() <= 2, "{mode:?}");
        for v in &res.values {
            assert_eq!(*v, 0.1);
        }
    }
}

#[test]
fn single_vertex_graph() {
    let g = Graph::empty(1);
    for mode in all_modes(true) {
        let cfg = JobConfig::new(mode, 1);
        let res = hybridgraph_core::run_job(Arc::new(Wcc::new()), &g, cfg).unwrap();
        assert_eq!(res.values, vec![0]);
    }
}

#[test]
fn more_workers_than_vertices() {
    let g = gen::cycle(3);
    for mode in all_modes(true) {
        let cfg = JobConfig::new(mode, 8).with_buffer(4);
        let res = hybridgraph_core::run_job(Arc::new(Wcc::new()), &g, cfg).unwrap();
        assert_eq!(res.values, vec![0, 0, 0], "{mode:?}");
    }
}

#[test]
fn self_loop_free_sources_with_unreachable_rest() {
    // Source is a sink: SSSP produces dist 0 there, infinity elsewhere,
    // and terminates after the empty push.
    let g = gen::star(5); // 0 -> 1..4
    let program = Sssp::new(VertexId(3)); // vertex 3 has no out-edges
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let cfg = JobConfig::new(mode, 2).with_buffer(4);
        let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        assert_eq!(res.values[3], 0.0, "{mode:?}");
        assert!(res.values[0].is_infinite());
        assert!(res.metrics.supersteps() <= 2);
    }
}

#[test]
fn one_message_buffer_still_correct() {
    let g = gen::uniform(60, 360, 2);
    let want = hybridgraph_algos::reference::reference_run(&Lpa::new(3), &g);
    for mode in all_modes(false) {
        let cfg = JobConfig::new(mode, 3).with_buffer(1);
        let res = hybridgraph_core::run_job(Arc::new(Lpa::new(3)), &g, cfg).unwrap();
        assert_eq!(res.values, want, "{mode:?}");
    }
}

#[test]
fn tiny_sending_threshold_still_correct() {
    let g = gen::uniform(50, 300, 7);
    let want = hybridgraph_algos::reference::reference_run(&PageRank::new(4), &g);
    for mode in all_modes(true) {
        let cfg = JobConfig::new(mode, 3)
            .with_buffer(32)
            .with_sending_threshold(1);
        let res = hybridgraph_core::run_job(Arc::new(PageRank::new(4)), &g, cfg).unwrap();
        for (got, want) in res.values.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9, "{mode:?}");
        }
    }
}

#[test]
fn many_blocks_per_worker() {
    let g = gen::uniform(40, 240, 9);
    let want = hybridgraph_algos::reference::reference_run(&Wcc::new(), &g);
    let mut cfg = JobConfig::new(Mode::BPull, 2).with_buffer(16);
    cfg.vblocks_per_worker = Some(100); // clamps to vertices per worker
    let res = hybridgraph_core::run_job(Arc::new(Wcc::new()), &g, cfg).unwrap();
    assert_eq!(res.values, want);
}

#[test]
fn max_supersteps_cap_halts_nonconverging_programs() {
    let g = gen::cycle(6);
    let mut cfg = JobConfig::new(Mode::BPull, 2);
    cfg.max_supersteps = 4;
    // PageRank with an unbounded budget would run forever.
    let res = hybridgraph_core::run_job(Arc::new(PageRank::new(u64::MAX)), &g, cfg).unwrap();
    assert_eq!(res.metrics.supersteps(), 4);
}
