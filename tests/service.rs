//! Multi-tenant `GraphService` end-to-end: concurrent jobs must be
//! byte-identically replayable, admission control must reject and queue
//! with typed errors, the catalog must enforce its reference counts, and
//! a faulted tenant must recover without perturbing its neighbours.

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use hybridgraph_obs::export_chrome_trace_jobs;
use std::sync::Arc;

fn graph_a() -> Graph {
    gen::rmat(256, 2048, gen::RmatParams::default(), 11)
}

fn graph_b() -> Graph {
    gen::uniform(200, 1600, 5)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn service(seed: u64, resident: usize, queued: usize) -> GraphService {
    GraphService::new(ServiceConfig {
        max_resident_jobs: resident,
        max_queued_jobs: queued,
        // Small enough that two tenants interfere through evictions, so
        // the determinism tests exercise the contended cache paths.
        cache_bytes: 32 * 1024,
        cache_slots: 8,
        seed,
        max_job_logical_io: None,
        max_job_memory: None,
        recovery_shed_threshold: 8,
    })
}

fn pagerank_cfg(workers: usize) -> JobConfig {
    let mut cfg = JobConfig::new(Mode::Hybrid, workers).with_buffer(2048);
    cfg.initial_mode_override = Some(Mode::Push);
    cfg
}

/// One two-tenant run: both jobs traced, batch-submitted under a
/// scheduling pause. Returns the combined Chrome trace plus both value
/// vectors (bitwise).
fn traced_pair(seed: u64) -> (String, Vec<u64>, Vec<u64>) {
    let svc = service(seed, 2, 0);
    svc.register_graph("a", graph_a(), GraphSpec::new(3).with_vblocks(2))
        .unwrap();
    svc.register_graph("b", graph_b(), GraphSpec::new(3))
        .unwrap();
    let sink_a = Arc::new(TraceSink::new(3));
    let sink_b = Arc::new(TraceSink::new(3));
    let pause = svc.pause_scheduling();
    let t_a = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3).with_trace(Arc::clone(&sink_a))),
        )
        .unwrap();
    let t_b = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("b", pagerank_cfg(3).with_trace(Arc::clone(&sink_b))),
        )
        .unwrap();
    drop(pause);
    let r_a = t_a.wait().unwrap();
    let r_b = t_b.wait().unwrap();
    let trace = export_chrome_trace_jobs(&[("job-a", &sink_a), ("job-b", &sink_b)]);
    (trace, bits(&r_a.values), bits(&r_b.values))
}

/// Two runs of the same two-tenant batch must agree byte-for-byte: the
/// combined trace (modeled-time timestamps, per-job tracks) and every
/// vertex value. This is the service-level determinism contract — thread
/// interleavings must not leak through the shared cache or scheduler.
#[test]
fn concurrent_jobs_double_run_byte_identical() {
    for seed in [1, 42] {
        let (trace1, va1, vb1) = traced_pair(seed);
        let (trace2, va2, vb2) = traced_pair(seed);
        assert_eq!(va1, va2, "seed {seed}: job-a values diverged");
        assert_eq!(vb1, vb2, "seed {seed}: job-b values diverged");
        assert_eq!(trace1, trace2, "seed {seed}: combined trace diverged");
    }
}

/// Sharing the engine must not change answers: a tenant's values are
/// bit-identical to the same job run solo (the cache and scheduler move
/// bytes and time, never results).
#[test]
fn shared_engine_matches_solo_values() {
    let solo = {
        let svc = service(7, 1, 0);
        svc.register_graph("a", graph_a(), GraphSpec::new(3))
            .unwrap();
        svc.submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3)),
        )
        .unwrap()
        .wait()
        .unwrap()
    };
    let svc = service(7, 2, 0);
    svc.register_graph("a", graph_a(), GraphSpec::new(3))
        .unwrap();
    svc.register_graph("b", graph_b(), GraphSpec::new(3))
        .unwrap();
    let pause = svc.pause_scheduling();
    let t_a = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3)),
        )
        .unwrap();
    let t_b = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("b", pagerank_cfg(3)),
        )
        .unwrap();
    drop(pause);
    let shared = t_a.wait().unwrap();
    t_b.wait().unwrap().metrics.supersteps();
    assert_eq!(
        bits(&solo.values),
        bits(&shared.values),
        "neighbour changed job-a's values"
    );
}

/// Admission control: unknown graphs, over-limit budgets and a full
/// queue are typed rejections; queued jobs still run to completion.
#[test]
fn admission_rejects_and_queues() {
    let svc = GraphService::new(ServiceConfig {
        max_resident_jobs: 1,
        max_queued_jobs: 1,
        cache_bytes: 32 * 1024,
        cache_slots: 8,
        seed: 3,
        max_job_logical_io: Some(1 << 20),
        max_job_memory: None,
        recovery_shed_threshold: 8,
    });
    svc.register_graph("a", graph_a(), GraphSpec::new(2))
        .unwrap();

    // Unknown graph.
    let err = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("nope", pagerank_cfg(2)),
        )
        .unwrap_err();
    assert!(matches!(err, AdmissionError::UnknownGraph(_)), "{err}");

    // Budget above the service's per-job ceiling.
    let err = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("a", pagerank_cfg(2).with_io_budget(1 << 21)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AdmissionError::BudgetTooLarge {
                resource: "logical_io",
                ..
            }
        ),
        "{err}"
    );

    // Trace sink built for the wrong worker count.
    let err = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("a", pagerank_cfg(2).with_trace(Arc::new(TraceSink::new(5)))),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AdmissionError::TraceWorkerMismatch {
                expected: 2,
                got: 5
            }
        ),
        "{err}"
    );

    // One resident slot, one queue slot: the third submission of the
    // batch is refused. The scheduling pause keeps job 1 from finishing
    // (it can never be granted a unit) until all three verdicts are in.
    let pause = svc.pause_scheduling();
    let t1 = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("a", pagerank_cfg(2)),
        )
        .unwrap();
    let t2 = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("a", pagerank_cfg(2)),
        )
        .unwrap();
    assert_eq!(svc.resident_jobs(), 1);
    assert_eq!(svc.queued_jobs(), 1);
    let err = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("a", pagerank_cfg(2)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AdmissionError::QueueFull {
                resident: 1,
                queued: 1
            }
        ),
        "{err}"
    );
    drop(pause);
    let r1 = t1.wait().unwrap();
    let r2 = t2.wait().unwrap();
    assert_eq!(bits(&r1.values), bits(&r2.values), "same job, same graph");
    assert_eq!(svc.resident_jobs(), 0);
    assert_eq!(svc.queued_jobs(), 0);
}

/// A running job's logical-I/O budget is enforced at a superstep barrier
/// with a typed error; the service frees its slot afterwards.
#[test]
fn budget_exceeded_terminates_job() {
    let svc = service(9, 1, 0);
    svc.register_graph("a", graph_a(), GraphSpec::new(2))
        .unwrap();
    let err = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(2).with_io_budget(512)),
        )
        .unwrap()
        .wait()
        .unwrap_err();
    match err {
        JobError::BudgetExceeded {
            resource, budget, ..
        } => {
            assert_eq!(resource, "logical_io");
            assert_eq!(budget, 512);
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
    assert_eq!(svc.resident_jobs(), 0, "failed job must free its slot");
    assert_eq!(svc.pins_of("a"), Some(0), "failed job must unpin");
}

/// Catalog life cycle: eviction is refused while a job pins the graph
/// and succeeds once the pin count drops to zero; evicted names free
/// their slot for re-registration.
#[test]
fn catalog_refuses_eviction_while_pinned() {
    let svc = service(5, 1, 0);
    svc.register_graph("a", graph_a(), GraphSpec::new(2))
        .unwrap();
    assert!(matches!(
        svc.register_graph("a", graph_a(), GraphSpec::new(2)),
        Err(CatalogError::NameTaken(_))
    ));
    assert!(matches!(
        svc.register_graph("big", graph_b(), GraphSpec::new(99)),
        Err(CatalogError::TooManyWorkers {
            workers: 99,
            slots: 8
        })
    ));

    // Pin the graph by submitting under a pause: the job cannot finish,
    // so the eviction attempt deterministically sees the pin.
    let pause = svc.pause_scheduling();
    let t = svc
        .submit(
            Arc::new(PageRank::new(2)),
            JobRequest::new("a", pagerank_cfg(2)),
        )
        .unwrap();
    assert_eq!(svc.pins_of("a"), Some(1));
    assert!(matches!(
        svc.evict("a"),
        Err(CatalogError::Pinned { pins: 1, .. })
    ));
    drop(pause);
    t.wait().unwrap();
    assert_eq!(svc.pins_of("a"), Some(0));
    svc.evict("a").unwrap();
    assert!(matches!(svc.evict("a"), Err(CatalogError::Unknown(_))));
    assert_eq!(svc.registered_graphs(), 0);
    svc.register_graph("a", graph_a(), GraphSpec::new(2))
        .unwrap();
}

/// A tenant that loses a worker mid-run *and* runs over a lossy wire
/// recovers to bit-identical values without perturbing its neighbour:
/// both jobs must match their solo fault-free baselines.
#[test]
fn faulted_tenant_recovers_without_perturbing_neighbour() {
    let faulted_cfg = || {
        let plan = FaultPlan::new()
            .kill(1, 2, FaultPhase::Compute)
            .with_net(Arc::new(NetFaultPlan::new(0xFEE1).with_drops(100, 2)));
        pagerank_cfg(3)
            .with_checkpoint(CheckpointPolicy::EveryK(1))
            .with_fault_plan(Arc::new(plan))
    };
    // Solo fault-free baselines.
    let base_a = {
        let svc = service(13, 1, 0);
        svc.register_graph("a", graph_a(), GraphSpec::new(3))
            .unwrap();
        svc.submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3)),
        )
        .unwrap()
        .wait()
        .unwrap()
    };
    let base_b = {
        let svc = service(13, 1, 0);
        svc.register_graph("b", graph_b(), GraphSpec::new(3))
            .unwrap();
        svc.submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("b", pagerank_cfg(3)),
        )
        .unwrap()
        .wait()
        .unwrap()
    };

    // Concurrent: job-a clean, job-b killed at superstep 2 over a lossy
    // wire, rolling back to its superstep-1 checkpoint.
    let svc = service(13, 2, 0);
    svc.register_graph("a", graph_a(), GraphSpec::new(3))
        .unwrap();
    svc.register_graph("b", graph_b(), GraphSpec::new(3))
        .unwrap();
    let pause = svc.pause_scheduling();
    let t_a = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3)),
        )
        .unwrap();
    let t_b = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("b", faulted_cfg()),
        )
        .unwrap();
    drop(pause);
    let r_a = t_a.wait().unwrap();
    let r_b = t_b.wait().unwrap();

    assert!(
        r_b.metrics.recovery.rollbacks >= 1,
        "the kill must have forced a rollback"
    );
    assert_eq!(
        bits(&base_b.values),
        bits(&r_b.values),
        "faulted tenant diverged from its fault-free baseline"
    );
    assert_eq!(
        bits(&base_a.values),
        bits(&r_a.values),
        "neighbour of the faulted tenant was perturbed"
    );
}
