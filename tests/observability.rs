//! Observability determinism: traces are byte-identical run to run, add
//! nothing to the cost model, and the Q_t audit mirrors the decisions
//! actually taken.
//!
//! Timestamps in the trace are *modeled* time (byte counts divided by
//! the device profile), so identical seeded jobs must serialize to
//! identical Chrome Trace JSON — even when the simulated wire drops,
//! duplicates and delays frames, because ARQ retransmissions are never
//! recorded on the trace timeline (only fault-plan fired counters are,
//! and those are deterministic at superstep barriers).

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use hybridgraph_obs::{EventKind, QtVerdict};
use std::sync::Arc;

fn graph() -> Graph {
    gen::rmat(256, 2048, gen::RmatParams::default(), 11)
}

fn base_cfg(workers: usize) -> JobConfig {
    JobConfig::new(Mode::Hybrid, workers).with_buffer(64)
}

/// Runs hybrid PageRank with a fresh sink; returns (trace JSON, metrics).
fn traced_run(cfg_mut: impl Fn(JobConfig) -> JobConfig) -> (String, JobMetrics) {
    let g = graph();
    let workers = 3;
    let sink = Arc::new(TraceSink::new(workers));
    let cfg = cfg_mut(base_cfg(workers).with_trace(Arc::clone(&sink)));
    let m = run_job(Arc::new(PageRank::new(6)), &g, cfg)
        .expect("job failed")
        .metrics;
    let json = export_chrome_trace(&sink);
    validate_json(&json).expect("trace must be valid JSON");
    (json, m)
}

#[test]
fn identical_runs_emit_byte_identical_traces() {
    let (a, ma) = traced_run(|c| c);
    let (b, mb) = traced_run(|c| c);
    assert_eq!(a, b, "same-seed traces must serialize identically");
    assert_eq!(ma.steps.len(), mb.steps.len());
    assert!(a.contains("\"ph\":\"X\""), "trace has spans");
    assert!(a.contains("vfs."), "trace has per-class VFS events");
}

#[test]
fn lossy_wire_runs_stay_byte_identical_and_mark_arq_faults() {
    let lossy = |c: JobConfig| {
        c.with_fault_plan(Arc::new(FaultPlan::new().with_net(Arc::new(
            NetFaultPlan::new(77).with_drops(200, 2).with_duplicates(50),
        ))))
    };
    let (a, ma) = traced_run(lossy);
    let (b, _) = traced_run(lossy);
    assert_eq!(a, b, "lossy same-seed traces must serialize identically");

    // The wire was genuinely lossy…
    assert!(
        ma.net_overhead.dropped_frames > 0,
        "fault plan never fired: {:?}",
        ma.net_overhead
    );
    // …the trace says so (deterministic fired counters only)…
    assert!(a.contains("arq.faults"), "lossy trace marks ARQ faults");
    let (clean, mc) = traced_run(|c| c);
    assert!(
        !clean.contains("arq.faults"),
        "lossless trace must not mark ARQ faults"
    );
    // …and the loss never perturbed the cost model: identical Q_t
    // inputs, byte counts and mode sequence as the lossless run.
    assert_eq!(ma.steps.len(), mc.steps.len());
    for (l, c) in ma.steps.iter().zip(&mc.steps) {
        assert_eq!(l.kind, c.kind, "superstep {} kind", c.superstep);
        assert_eq!(l.sem, c.sem, "superstep {} semantic bytes", c.superstep);
        assert_eq!(
            l.net_out_bytes, c.net_out_bytes,
            "superstep {} logical net bytes",
            c.superstep
        );
        assert_eq!(
            l.q_metric.to_bits(),
            c.q_metric.to_bits(),
            "superstep {} Q_t",
            c.superstep
        );
    }
    assert_eq!(ma.qt_audit, mc.qt_audit, "audit records diverged");
}

#[test]
fn tracing_off_changes_nothing_and_records_nothing() {
    let g = graph();
    let sink = Arc::new(TraceSink::new(3));
    let with = run_job(
        Arc::new(PageRank::new(6)),
        &g,
        base_cfg(3).with_trace(Arc::clone(&sink)),
    )
    .expect("job failed");
    let without = run_job(Arc::new(PageRank::new(6)), &g, base_cfg(3)).expect("job failed");

    assert!(sink.total_events() > 0, "tracing on records events");
    let wm = &with.metrics;
    let om = &without.metrics;
    assert_eq!(wm.steps.len(), om.steps.len());
    for (a, b) in wm.steps.iter().zip(&om.steps) {
        assert_eq!(a.io, b.io, "superstep {} I/O bytes", b.superstep);
        assert_eq!(a.sem, b.sem, "superstep {} semantic bytes", b.superstep);
        assert_eq!(a.q_metric.to_bits(), b.q_metric.to_bits());
    }
    assert_eq!(wm.qt_audit, om.qt_audit, "audit must not depend on tracing");
    assert_eq!(
        with.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        without
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "tracing perturbed the computation"
    );
}

#[test]
fn audit_switch_records_match_recorded_switches() {
    // SSSP on a path-heavy graph under hybrid exercises both verdict
    // kinds; every SWITCH audit row must line up with JobMetrics.switches
    // (and vice versa), and every audited superstep must exist.
    let g = gen::randomize_weights(&gen::uniform(200, 1200, 5), 1.0, 4.0, 6);
    let m = run_job(
        Arc::new(Sssp::new(VertexId(0))),
        &g,
        JobConfig::new(Mode::Hybrid, 3).with_buffer(64),
    )
    .expect("job failed")
    .metrics;
    let audited_switches: Vec<u64> = m
        .qt_audit
        .iter()
        .filter(|a| a.verdict == QtVerdict::Switch)
        .map(|a| a.superstep + 1)
        .collect();
    let recorded: Vec<u64> = m.switches.iter().map(|(s, _, _)| *s).collect();
    assert_eq!(audited_switches, recorded, "audit vs switches");
    for a in &m.qt_audit {
        assert!(
            m.steps.iter().any(|s| s.superstep == a.superstep),
            "audit references unexecuted superstep {}",
            a.superstep
        );
        let expect_after = a.verdict == QtVerdict::Switch;
        assert_eq!(
            a.mode_before != a.mode_after,
            expect_after,
            "superstep {}: verdict {:?} vs mode transition {} -> {}",
            a.superstep,
            a.verdict,
            a.mode_before,
            a.mode_after
        );
    }
}

#[test]
fn trace_covers_every_superstep_and_track() {
    let sink = Arc::new(TraceSink::new(3));
    let g = graph();
    let m = run_job(
        Arc::new(PageRank::new(6)),
        &g,
        base_cfg(3).with_trace(Arc::clone(&sink)),
    )
    .expect("job failed")
    .metrics;

    // Master track: a load span, then one span per superstep whose name
    // is the executed StepKind label, each followed by a barrier instant.
    let master = sink.master().events();
    let spans: Vec<String> = master
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { .. }))
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(spans[0], "load");
    let step_spans: Vec<&str> = spans
        .iter()
        .skip(1)
        .map(|s| s.as_str())
        .filter(|s| *s != "checkpoint")
        .collect();
    let kinds: Vec<&str> = m.steps.iter().map(|s| s.kind.label()).collect();
    assert_eq!(step_spans, kinds, "master spans mirror the mode sequence");
    let barriers = master.iter().filter(|e| e.name == "barrier").count();
    assert_eq!(barriers as u64, m.supersteps());

    // Worker tracks: phase spans for every superstep after the first.
    for w in 0..3 {
        let evs = sink.worker(w).events();
        assert!(
            evs.iter().any(|e| matches!(e.kind, EventKind::Span { .. })),
            "worker {w} has phase spans"
        );
        assert!(
            evs.iter().any(|e| e.name.starts_with("vfs.")),
            "worker {w} has per-class VFS events"
        );
    }

    // Control track: one qt instant per Switcher evaluation.
    let qt = sink
        .control()
        .events()
        .iter()
        .filter(|e| e.name == "qt")
        .count();
    assert_eq!(qt, m.qt_audit.len());

    // Net track: one counter per superstep.
    let net = sink
        .net()
        .events()
        .iter()
        .filter(|e| e.name == "net.bytes")
        .count();
    assert_eq!(net as u64, m.supersteps());
}
