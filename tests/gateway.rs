//! Gateway end-to-end: a job through the network front door must be
//! byte-identical to the same job submitted directly, a multi-engine
//! pool must replay byte-identically run to run, every engine error
//! must cross the wire as its stable `(domain, code)` pair, and the
//! frame layer must reject malformed, torn and hostile input with typed
//! errors — never a panic (including under a seeded fuzz loop).

use hybridgraph::core::encode_qt_audits;
use hybridgraph::gateway::proto::{
    encode_values, ErrorDomain, JobOptions, JobStatusInfo, ProgramSpec, ProgressEvent, Request,
    Response, SubmitReq, GW_SHUTTING_DOWN, GW_UNKNOWN_DATASET, GW_UNKNOWN_JOB,
};
use hybridgraph::gateway::wire::{
    decode_frame, encode_frame, read_frame, write_frame, WireError, DEFAULT_MAX_FRAME, MAGIC,
    VERSION,
};
use hybridgraph::gateway::ClientError;
use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use std::io::Write as _;
use std::sync::Arc;

const SUPERSTEPS: u64 = 4;
const WORKERS: usize = 3;
const BUFFER: u64 = 2048;

fn svc_cfg(seed: u64) -> ServiceConfig {
    ServiceConfig {
        seed,
        // Small enough that co-resident tenants contend through
        // evictions, as in the service-level determinism tests.
        cache_bytes: 32 * 1024,
        cache_slots: 8,
        ..ServiceConfig::default()
    }
}

fn tenant_graphs() -> Vec<Graph> {
    vec![
        gen::rmat(256, 2048, gen::RmatParams::default(), 11),
        gen::uniform(200, 1600, 5),
        gen::rmat(224, 1792, gen::RmatParams::default(), 23),
        gen::uniform(180, 1440, 9),
    ]
}

fn options(trace: bool) -> JobOptions {
    JobOptions {
        mode: Mode::Hybrid,
        buffer_messages: BUFFER,
        trace,
        max_supersteps: 0,
    }
}

/// A served loopback gateway plus a connected client.
fn loopback_gateway(
    seed: u64,
    engines: usize,
) -> (
    GatewayServer,
    Arc<LoopbackTransport>,
    hybridgraph::gateway::ServerHandle,
    GatewayClient,
) {
    let server = GatewayServer::new(
        EnginePool::new(svc_cfg(seed), engines),
        GatewayConfig::default(),
    );
    let transport = LoopbackTransport::new();
    let handle = server.serve(transport.clone());
    let client = GatewayClient::connect_loopback(&transport).expect("connect");
    (server, transport, handle, client)
}

/// The ISSUE's core acceptance: the gateway adds observation, never
/// behavior. One traced hybrid PageRank job through the loopback
/// gateway must match the same job submitted directly to an
/// `EnginePool` byte for byte — values, `Q_t` audit bytes, the Chrome
/// trace, and the modeled/physical accounting.
#[test]
fn loopback_job_byte_identical_to_direct_submission() {
    let g = gen::rmat(256, 2048, gen::RmatParams::default(), 11);

    let pool = EnginePool::new(svc_cfg(7), 1);
    pool.register_graph("g", g.clone(), GraphSpec::new(WORKERS).with_vblocks(2))
        .expect("register");
    let sink = Arc::new(TraceSink::new(WORKERS));
    let direct = pool
        .submit(
            Arc::new(PageRank::new(SUPERSTEPS)),
            JobRequest::new(
                "g",
                JobConfig::new(Mode::Hybrid, WORKERS)
                    .with_buffer(BUFFER as usize)
                    .with_trace(Arc::clone(&sink)),
            ),
        )
        .expect("admit")
        .wait()
        .expect("direct job failed");

    let (_server, _transport, handle, mut client) = loopback_gateway(7, 1);
    client
        .register_graph("g", &g, WORKERS, 2, CodecChoice::None)
        .expect("register");
    let job = client
        .submit(
            "g",
            ProgramSpec::PageRank {
                supersteps: SUPERSTEPS,
            },
            options(true),
        )
        .expect("submit");
    let outcome = client.fetch(job).expect("fetch");
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();

    assert_eq!(
        outcome.values,
        encode_values(&direct.values),
        "values diverged"
    );
    assert_eq!(
        outcome.audits,
        encode_qt_audits(&direct.metrics.qt_audit),
        "Q_t audits diverged"
    );
    assert_eq!(
        outcome.trace.as_deref(),
        Some(export_chrome_trace(&sink).as_str()),
        "traces diverged"
    );
    assert_eq!(outcome.modeled_secs, direct.metrics.modeled_total_secs());
    assert_eq!(outcome.physical_bytes, direct.metrics.total_io_bytes());
    assert_eq!(outcome.supersteps, direct.metrics.supersteps());
}

/// One full four-tenant batch on a 4-engine pool over loopback: returns
/// every job's `(values, audits, trace)` blobs plus the assigned ids.
#[allow(clippy::type_complexity)]
fn run_pool_batch(seed: u64) -> (Vec<u64>, Vec<(Vec<u8>, Vec<u8>, String)>) {
    let graphs = tenant_graphs();
    let (server, _transport, handle, mut client) = loopback_gateway(seed, 4);
    // One tenant per engine, found by probing the placement hash.
    let names: Vec<String> = (0..4)
        .map(|e| {
            (0..)
                .map(|i| format!("t{i}"))
                .find(|n| server.pool().placement(n) == e)
                .unwrap()
        })
        .collect();
    for (name, g) in names.iter().zip(&graphs) {
        client
            .register_graph(name, g, WORKERS, 1, CodecChoice::None)
            .expect("register");
    }
    let jobs = client
        .submit_batch(
            names
                .iter()
                .map(|name| SubmitReq {
                    graph: name.clone(),
                    program: ProgramSpec::PageRank {
                        supersteps: SUPERSTEPS,
                    },
                    options: options(true),
                })
                .collect(),
        )
        .expect("batch");
    let blobs = jobs
        .iter()
        .map(|&id| {
            let o = client.fetch(id).expect("fetch");
            (o.values, o.audits, o.trace.expect("traced job"))
        })
        .collect();
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();
    (jobs, blobs)
}

/// The pool-wide replay guarantee through the gateway: the same
/// four-tenant batch on a 4-engine pool, run twice under the same seed,
/// must produce byte-identical values, audits and traces for every job
/// — and the gateway must assign ids in submission order.
#[test]
fn four_engine_pool_double_run_byte_identical() {
    for seed in [1, 42] {
        let (ids1, run1) = run_pool_batch(seed);
        let (ids2, run2) = run_pool_batch(seed);
        assert_eq!(ids1, vec![0, 1, 2, 3], "ids follow submission order");
        assert_eq!(ids1, ids2, "seed {seed}: job ids diverged");
        for (i, (a, b)) in run1.iter().zip(&run2).enumerate() {
            assert_eq!(a.0, b.0, "seed {seed}: job {i} values diverged");
            assert_eq!(a.1, b.1, "seed {seed}: job {i} audits diverged");
            assert_eq!(a.2, b.2, "seed {seed}: job {i} traces diverged");
        }
    }
}

/// Placement is a pure function of the graph name: independent pools of
/// the same width agree, and `Registered` reports the engine the
/// placement hash names.
#[test]
fn placement_is_deterministic_and_reported() {
    let probe_a = EnginePool::new(svc_cfg(1), 4);
    let probe_b = EnginePool::new(svc_cfg(99), 4);
    for i in 0..32 {
        let name = format!("tenant-{i}");
        assert_eq!(
            probe_a.placement(&name),
            probe_b.placement(&name),
            "placement must not depend on the pool seed"
        );
    }

    let (server, _transport, handle, mut client) = loopback_gateway(1, 4);
    let g = gen::uniform(64, 256, 3);
    for name in ["alpha", "beta", "gamma"] {
        let (engine, _) = client
            .register_graph(name, &g, 2, 1, CodecChoice::None)
            .expect("register");
        assert_eq!(engine as usize, server.pool().placement(name));
    }
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();
}

/// Progress subscription: events arrive in order (load first, then
/// strictly increasing supersteps, one terminal `Done` last) and the
/// stream's final status matches a later snapshot and fetch.
#[test]
fn subscribe_streams_ordered_progress() {
    let (_server, _transport, handle, mut client) = loopback_gateway(3, 1);
    let g = gen::uniform(128, 512, 3);
    client
        .register_graph("g", &g, 2, 1, CodecChoice::None)
        .expect("register");
    let job = client
        .submit(
            "g",
            ProgramSpec::PageRank {
                supersteps: SUPERSTEPS,
            },
            options(false),
        )
        .expect("submit");
    let mut events = Vec::new();
    let status = client
        .subscribe(job, |ev| events.push(ev.clone()))
        .expect("subscribe");
    assert_eq!(status, JobStatusInfo::Done);

    assert!(
        matches!(events.first(), Some(ProgressEvent::Loaded { .. })),
        "first event must be the load barrier: {events:?}"
    );
    let steps: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev {
            ProgressEvent::Superstep { superstep, .. } => Some(*superstep),
            _ => None,
        })
        .collect();
    assert_eq!(steps, (1..=SUPERSTEPS).collect::<Vec<_>>(), "barrier order");
    assert_eq!(events.last(), Some(&ProgressEvent::Done));
    assert_eq!(
        events.iter().filter(|ev| ev.is_terminal()).count(),
        1,
        "exactly one terminal event"
    );

    assert_eq!(client.status(job).expect("status"), JobStatusInfo::Done);
    assert!(client.fetch(job).is_ok(), "results stay fetchable");
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();
}

fn remote_code(err: ClientError) -> (ErrorDomain, u16) {
    err.remote_code()
        .unwrap_or_else(|| panic!("expected a remote error, got {err}"))
}

/// Every error table crosses the wire with its stable `(domain, code)`
/// pair: admission, catalog and gateway-level failures each map to the
/// documented number, and the connection survives every one of them.
#[test]
fn error_codes_cross_the_wire() {
    let (_server, transport, handle, mut client) = loopback_gateway(1, 2);
    let g = gen::uniform(64, 256, 3);

    // Admission code 1: submitting against an unregistered graph.
    let err = client
        .submit("ghost", ProgramSpec::Wcc, options(false))
        .unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Admission, 1));

    // Gateway code 1: status / fetch of a job id never assigned.
    let err = client.status(999).unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Gateway, GW_UNKNOWN_JOB));
    let err = client.fetch(999).unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Gateway, GW_UNKNOWN_JOB));

    // Gateway code 3: a server-side dataset build with an unknown name.
    let err = client
        .register_dataset("d", "nosuch", 20_000, 2, 1, CodecChoice::None)
        .unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Gateway, GW_UNKNOWN_DATASET));

    // Catalog code 1: re-registering a taken name.
    client
        .register_graph("g", &g, 2, 1, CodecChoice::None)
        .expect("register");
    let err = client
        .register_graph("g", &g, 2, 1, CodecChoice::None)
        .unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Catalog, 1));

    // Catalog code 2: evicting a name that was never registered.
    let err = client.evict("ghost").unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Catalog, 2));

    // Catalog code 4: more workers than the engine's cache shards.
    let err = client
        .register_graph("wide", &g, 99, 1, CodecChoice::None)
        .unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Catalog, 4));

    // Gateway code 2: requests racing a shutdown are refused, not
    // dropped — a second connection sees the typed code.
    let mut straggler = GatewayClient::connect_loopback(&transport).expect("connect");
    client.shutdown().expect("shutdown");
    let err = straggler.metrics_text().unwrap_err();
    assert_eq!(remote_code(err), (ErrorDomain::Gateway, GW_SHUTTING_DOWN));

    drop(client);
    drop(straggler);
    handle.join();
}

/// Reads one response frame off a raw connection.
fn read_resp(conn: &mut dyn hybridgraph::gateway::Conn) -> Result<Response, WireError> {
    let (frame, _) = read_frame(conn, DEFAULT_MAX_FRAME)?;
    Response::decode(frame.kind, &frame.body)
}

fn protocol_code(resp: Result<Response, WireError>) -> u16 {
    match resp {
        Ok(Response::Error(e)) => {
            assert_eq!(e.domain, ErrorDomain::Protocol, "domain of {e:?}");
            e.code
        }
        other => panic!("expected a protocol error response, got {other:?}"),
    }
}

/// Framing failures answer with a typed protocol error and close the
/// connection; malformed bodies inside a good frame answer with a typed
/// error and keep it. A peer that disconnects mid-frame must not take
/// the server down.
#[test]
fn protocol_robustness_over_raw_connections() {
    let server = GatewayServer::new(
        EnginePool::new(svc_cfg(1), 1),
        GatewayConfig {
            max_frame: 1 << 20,
            read_timeout: None,
        },
    );
    let transport = LoopbackTransport::new();
    let handle = server.serve(transport.clone());

    // Wrong magic: code 2, then EOF.
    let mut conn = transport.connect().expect("connect");
    conn.write_all(b"NOPEnope").expect("write");
    assert_eq!(protocol_code(read_resp(&mut *conn)), 2);
    assert!(
        matches!(read_resp(&mut *conn), Err(WireError::Closed)),
        "connection must close after a framing failure"
    );
    drop(conn);

    // Wrong version: code 3.
    let mut conn = transport.connect().expect("connect");
    conn.write_all(&MAGIC).expect("write");
    conn.write_all(&[VERSION + 1, 8, 0]).expect("write");
    assert_eq!(protocol_code(read_resp(&mut *conn)), 3);
    drop(conn);

    // A declared length over the server's cap: code 4, rejected before
    // any body byte is read (the body is never sent).
    let mut conn = transport.connect().expect("connect");
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&MAGIC);
    hostile.push(VERSION);
    hostile.push(8);
    hybridgraph::codec::varint::write_u64(&mut hostile, u64::MAX);
    conn.write_all(&hostile).expect("write");
    assert_eq!(protocol_code(read_resp(&mut *conn)), 4);
    drop(conn);

    // A well-framed but malformed body: code 6, and the connection
    // survives to serve a valid request.
    let mut conn = transport.connect().expect("connect");
    let bytes = encode_frame(2, &[0xff, 0xff, 0xff]);
    conn.write_all(&bytes).expect("write");
    assert_eq!(protocol_code(read_resp(&mut *conn)), 6);
    let (kind, body) = Request::Metrics.encode();
    write_frame(&mut *conn, kind, &body).expect("write");
    assert!(
        matches!(read_resp(&mut *conn), Ok(Response::MetricsText(_))),
        "connection must survive a malformed body"
    );
    drop(conn);

    // An unknown frame kind is a malformed body, not a crash.
    let mut conn = transport.connect().expect("connect");
    conn.write_all(&encode_frame(42, b"")).expect("write");
    assert_eq!(protocol_code(read_resp(&mut *conn)), 6);
    drop(conn);

    // A peer dying mid-frame (magic sent, rest never arrives) is torn,
    // handled, and the server keeps serving new connections.
    let mut conn = transport.connect().expect("connect");
    conn.write_all(&MAGIC[..2]).expect("write");
    drop(conn);
    let mut client = GatewayClient::connect_loopback(&transport).expect("connect");
    assert!(
        client.metrics_text().is_ok(),
        "server survived the torn frame"
    );

    // The rejected-frame counter saw every framing failure above.
    let metrics = client.metrics_text().expect("metrics");
    assert!(
        metrics.contains("gateway_rejected_frames_total"),
        "exposition must carry the reject counter:\n{metrics}"
    );
    client.shutdown().expect("shutdown");
    drop(client);
    handle.join();
}

/// A tiny deterministic LCG for the fuzz loop (the repo bans ambient
/// randomness — seeds make failures replayable).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Seeded fuzz over the frame decoder and both message decoders:
/// mutated valid frames, truncations, and raw noise must all come back
/// as typed `WireError`s — never a panic, never an abort. Whatever does
/// decode must re-encode to an equal value (decode/encode agreement).
#[test]
fn fuzz_decoders_return_typed_errors() {
    let seed_requests: Vec<Vec<u8>> = [
        Request::RegisterGraph {
            name: "g".into(),
            workers: 3,
            vblocks_per_worker: 2,
            codec: CodecChoice::None,
            source: hybridgraph::gateway::GraphSource::Blob(vec![1, 2, 3, 4]),
        },
        Request::Submit(SubmitReq {
            graph: "g".into(),
            program: ProgramSpec::PageRank { supersteps: 5 },
            options: JobOptions::default(),
        }),
        Request::SubmitBatch(vec![SubmitReq {
            graph: "b".into(),
            program: ProgramSpec::Sa { ratio: 8, seed: 7 },
            options: JobOptions::default(),
        }]),
        Request::JobStatus { job_id: 3 },
        Request::Subscribe { job_id: 4 },
        Request::FetchResults { job_id: 5 },
        Request::Evict { name: "g".into() },
        Request::Metrics,
        Request::Shutdown,
    ]
    .iter()
    .map(|req| {
        let (kind, body) = req.encode();
        encode_frame(kind, &body)
    })
    .collect();

    let mut rng = Lcg(0x5eed_cafe);
    for round in 0..4000 {
        let mut buf = if round % 4 == 0 {
            // Raw noise of a random length.
            let len = (rng.next() % 64) as usize;
            (0..len).map(|_| rng.next() as u8).collect::<Vec<u8>>()
        } else {
            seed_requests[(rng.next() as usize) % seed_requests.len()].clone()
        };
        // Mutate: flip bytes, truncate, or append garbage.
        for _ in 0..(rng.next() % 4) {
            if buf.is_empty() {
                break;
            }
            let at = (rng.next() as usize) % buf.len();
            buf[at] = buf[at].wrapping_add(rng.next() as u8);
        }
        if rng.next().is_multiple_of(3) && !buf.is_empty() {
            buf.truncate((rng.next() as usize) % buf.len());
        }
        if rng.next().is_multiple_of(5) {
            buf.push(rng.next() as u8);
        }

        // The property: typed result, no panic — and any accepted frame
        // whose body decodes re-encodes to an equal message.
        if let Ok((frame, used)) = decode_frame(&buf, DEFAULT_MAX_FRAME) {
            assert!(used <= buf.len(), "round {round}: consumed past the buffer");
            if let Ok(req) = Request::decode(frame.kind, &frame.body) {
                let (kind, body) = req.encode();
                assert_eq!(
                    Request::decode(kind, &body).expect("re-decode"),
                    req,
                    "round {round}: request decode/encode disagreement"
                );
            }
            if let Ok(resp) = Response::decode(frame.kind, &frame.body) {
                let (kind, body) = resp.encode();
                assert_eq!(
                    Response::decode(kind, &body).expect("re-decode"),
                    resp,
                    "round {round}: response decode/encode disagreement"
                );
            }
        }
    }
}

/// TCP smoke: the same job over real localhost sockets produces the
/// same bytes as over loopback (the carrier never leaks into results).
#[test]
fn tcp_localhost_matches_loopback() {
    let g = gen::rmat(256, 2048, gen::RmatParams::default(), 11);
    let run = |mut client: GatewayClient, handle: hybridgraph::gateway::ServerHandle| {
        client
            .register_graph("g", &g, WORKERS, 1, CodecChoice::None)
            .expect("register");
        let job = client
            .submit(
                "g",
                ProgramSpec::PageRank {
                    supersteps: SUPERSTEPS,
                },
                options(false),
            )
            .expect("submit");
        let o = client.fetch(job).expect("fetch");
        client.shutdown().expect("shutdown");
        drop(client);
        handle.join();
        (
            o.values,
            o.audits,
            o.modeled_secs.to_bits(),
            o.physical_bytes,
        )
    };

    let (_server, _transport, handle, client) = loopback_gateway(7, 1);
    let via_loopback = run(client, handle);

    let server = GatewayServer::new(EnginePool::new(svc_cfg(7), 1), GatewayConfig::default());
    let transport = Arc::new(TcpTransport::bind("127.0.0.1:0").expect("bind"));
    let addr = transport.local_addr();
    let handle = server.serve(transport);
    let client = GatewayClient::connect_tcp(addr).expect("connect");
    let via_tcp = run(client, handle);

    assert_eq!(via_loopback, via_tcp, "tcp and loopback bytes diverged");
}
