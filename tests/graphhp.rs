//! GraphHP-style hybrid sync/async execution: correctness, determinism
//! and recovery of `Mode::Async`.
//!
//! The async engine iterates interior vertices in-place between global
//! barriers (pseudo-rounds), so its superstep count must *drop* against
//! strict BSP while the converged values stay within the program's
//! tolerance. Runs are deterministic: same seed, same byte-identical
//! values, audits and traces.

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use std::sync::Arc;

fn pagerank_graph() -> Graph {
    gen::rmat(256, 2048, gen::RmatParams::default(), 11)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Two same-seed async runs produce byte-identical values, superstep
/// metrics, Q_t audits (async extension included) and traces.
#[test]
fn async_same_seed_runs_are_byte_identical() {
    let g = pagerank_graph();
    let program = PageRank::until(1e-10, 60);
    let run = || {
        let sink = Arc::new(TraceSink::new(4));
        let cfg = JobConfig::new(Mode::Async, 4)
            .with_buffer(256)
            .with_trace(Arc::clone(&sink));
        let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        (res, sink.export_states())
    };
    let (a, ta) = run();
    let (b, tb) = run();
    assert_eq!(bits(&a.values), bits(&b.values), "values diverged");
    assert_eq!(a.metrics.steps.len(), b.metrics.steps.len());
    for (x, y) in a.metrics.steps.iter().zip(&b.metrics.steps) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.sem, y.sem, "superstep {}", x.superstep);
        assert_eq!(x.asy, y.asy, "superstep {}", x.superstep);
        assert_eq!(
            x.max_residual.to_bits(),
            y.max_residual.to_bits(),
            "superstep {}",
            x.superstep
        );
    }
    assert_eq!(a.metrics.qt_audit, b.metrics.qt_audit, "audits diverged");
    assert_eq!(ta, tb, "traces diverged");
    // Async supersteps carry the Q_t async extension in their audits.
    assert!(
        a.metrics.qt_audit.iter().any(|r| r.asy.is_some()),
        "async job must audit the async gain term"
    );
}

/// Async PageRank converges to the same fixed point as strict BSP — the
/// per-vertex gap stays within 100× the convergence tolerance — while
/// saving at least 30% of the global barriers. The graph is id-localized
/// (RMAT skew, community-clustered ids), the partition-friendly shape
/// GraphHP's pseudo-rounds exploit; random-id RMAT leaves too few
/// interior vertices to shorten the barrier chain.
#[test]
fn async_pagerank_converges_and_saves_barriers() {
    let g = gen::localize(
        &gen::rmat(1024, 8192, gen::RmatParams::default(), 11),
        0.9,
        60,
        7,
    );
    let eps = 1e-9;
    let program = PageRank::until(eps, 300);

    let bsp = run_job(Arc::new(program.clone()), &g, JobConfig::new(Mode::Push, 2)).unwrap();
    let asy = run_job(Arc::new(program), &g, JobConfig::new(Mode::Async, 2)).unwrap();

    for (v, (got, want)) in asy.values.iter().zip(&bsp.values).enumerate() {
        assert!(
            (got - want).abs() <= 100.0 * eps,
            "v{v}: async {got} vs bsp {want}"
        );
    }
    let bsp_barriers = bsp.metrics.steps.len() as u64;
    let asy_barriers = asy.metrics.steps.len() as u64;
    assert!(
        asy_barriers * 10 <= bsp_barriers * 7,
        "async must cut ≥30% of barriers: {asy_barriers} vs {bsp_barriers}"
    );
    assert!(asy.metrics.barriers_saved() > 0);
    assert_eq!(
        asy.metrics.total_pseudo_rounds(),
        asy_barriers + asy.metrics.barriers_saved(),
        "each superstep contributes one real barrier plus its saved ones"
    );
}

/// LPA under async execution still reaches a fixed point (no label moved
/// in the final superstep) and stops early against its superstep cap.
#[test]
fn async_lpa_converges_to_fixed_point() {
    let g = gen::rmat(128, 1024, gen::RmatParams::web(), 3);
    let program = Lpa::converging(40);
    let res = run_job(
        Arc::new(program),
        &g,
        JobConfig::new(Mode::Async, 3).with_buffer(128),
    )
    .unwrap();
    let last = res.metrics.steps.last().unwrap();
    assert_eq!(last.max_residual, 0.0, "final superstep moved a label");
    assert!(
        (res.metrics.steps.len() as u64) < 40,
        "tolerance must terminate before the cap"
    );
}

/// A worker killed mid-pseudo-superstep rolls back globally and the job
/// finishes byte-identical to a fault-free async run.
#[test]
fn async_recovers_byte_identically_after_worker_kill() {
    let g = pagerank_graph();
    let program = PageRank::until(1e-9, 60);
    let base = JobConfig::new(Mode::Async, 4).with_buffer(256);

    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
    assert_eq!(clean.metrics.recovery.rollbacks, 0);

    let plan = Arc::new(FaultPlan::new().kill(1, 3, FaultPhase::Compute));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(2))
        .with_fault_plan(Arc::clone(&plan));
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();

    assert_eq!(plan.fired(), 1, "the kill order must have fired");
    assert_eq!(faulted.metrics.recovery.rollbacks, 1);
    assert_eq!(bits(&clean.values), bits(&faulted.values));
    assert_eq!(clean.metrics.steps.len(), faulted.metrics.steps.len());
    for (c, f) in clean.metrics.steps.iter().zip(&faulted.metrics.steps) {
        assert_eq!(c.kind, f.kind, "superstep {}", c.superstep);
        assert_eq!(c.sem, f.sem, "superstep {}", c.superstep);
        assert_eq!(c.asy, f.asy, "superstep {}", c.superstep);
    }
}

/// Async mode stays on even with message logging: confined recovery is
/// excluded (pseudo-round receive state is not undoable), so a single
/// death falls back to global rollback — and still ends byte-identical.
#[test]
fn async_excludes_confined_recovery() {
    let g = pagerank_graph();
    let program = PageRank::until(1e-9, 60);
    let base = JobConfig::new(Mode::Async, 4).with_buffer(256);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();

    let plan = Arc::new(FaultPlan::new().kill(2, 4, FaultPhase::Barrier));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(2))
        .with_message_logging(true)
        .with_fault_plan(plan);
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();
    assert_eq!(faulted.metrics.recovery.confined_recoveries, 0);
    assert_eq!(faulted.metrics.recovery.rollbacks, 1);
    assert_eq!(bits(&clean.values), bits(&faulted.values));
}

/// Regression guard: strict BSP modes are untouched by the async
/// subsystem — no pseudo-round stats, no residual tracking without a
/// tolerance, no Async step kinds, and classification counters stay 0.
#[test]
fn strict_bsp_modes_carry_no_async_state() {
    let g = pagerank_graph();
    for mode in [
        Mode::Push,
        Mode::PushM,
        Mode::Pull,
        Mode::BPull,
        Mode::Hybrid,
    ] {
        let res = run_job(
            Arc::new(PageRank::new(5)),
            &g,
            JobConfig::new(mode, 3).with_buffer(128),
        )
        .unwrap();
        assert_eq!(res.metrics.load.boundary_vertices, 0, "{mode:?}");
        assert_eq!(res.metrics.load.interior_vertices, 0, "{mode:?}");
        assert_eq!(res.metrics.barriers_saved(), 0, "{mode:?}");
        assert_eq!(res.metrics.total_pseudo_rounds(), 0, "{mode:?}");
        for s in &res.metrics.steps {
            assert_eq!(
                s.asy,
                Default::default(),
                "{mode:?} superstep {}",
                s.superstep
            );
            assert_eq!(s.max_residual, 0.0, "{mode:?} superstep {}", s.superstep);
            assert!(
                !matches!(
                    s.kind,
                    hybridgraph_core::StepKind::Async | hybridgraph_core::StepKind::AsyncThenPush
                ),
                "{mode:?} ran an async step"
            );
        }
    }
}

/// The per-superstep active fraction and the load-report classification
/// are populated for async jobs.
#[test]
fn async_job_reports_classification_and_activity() {
    let g = pagerank_graph();
    let res = run_job(
        Arc::new(PageRank::until(1e-9, 60)),
        &g,
        JobConfig::new(Mode::Async, 4).with_buffer(256),
    )
    .unwrap();
    let load = &res.metrics.load;
    assert_eq!(load.num_vertices, g.num_vertices() as u64);
    assert_eq!(
        load.boundary_vertices + load.interior_vertices,
        load.num_vertices
    );
    assert!(
        load.interior_vertices > 0,
        "rmat blocks must have interiors"
    );
    let last = res.metrics.steps.last().unwrap().superstep;
    let f = res.metrics.active_fraction(last);
    assert!(f > 0.0 && f <= 1.0, "active fraction {f}");
}
