//! The physical I/O path: the same jobs on the real-file VFS backend
//! must produce identical results and identical byte accounting to the
//! in-memory backend.

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use std::sync::Arc;

#[test]
fn dir_vfs_matches_mem_vfs() {
    let g = gen::rmat(300, 3000, gen::RmatParams::default(), 21);
    let root = std::env::temp_dir().join(format!("hygraph-disk-{}", std::process::id()));
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let mem_cfg = JobConfig::new(mode, 3).with_buffer(64);
        let mut disk_cfg = mem_cfg.clone();
        disk_cfg.disk_root = Some(root.clone());

        let mem = hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &g, mem_cfg).unwrap();
        let disk = hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &g, disk_cfg).unwrap();

        for (a, b) in mem.values.iter().zip(&disk.values) {
            assert!((a - b).abs() < 1e-9, "{mode:?}: {a} vs {b}");
        }
        // Byte accounting is backend-independent.
        assert_eq!(
            mem.metrics.total_io_bytes(),
            disk.metrics.total_io_bytes(),
            "{mode:?}"
        );
        assert_eq!(mem.metrics.supersteps(), disk.metrics.supersteps());
    }
    // The worker directories and store files really exist on disk.
    assert!(root.join("w0").exists());
    let files: Vec<_> = std::fs::read_dir(root.join("w1"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(files.iter().any(|f| f == "values"), "files: {files:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sssp_on_real_disk() {
    let g = gen::randomize_weights(&gen::uniform(150, 900, 5), 1.0, 4.0, 5);
    let root = std::env::temp_dir().join(format!("hygraph-sssp-{}", std::process::id()));
    let mut cfg = JobConfig::new(Mode::Hybrid, 2).with_buffer(32);
    cfg.disk_root = Some(root.clone());
    let res = hybridgraph_core::run_job(Arc::new(Sssp::new(VertexId(0))), &g, cfg).unwrap();
    let want = hybridgraph_algos::reference::reference_run(&Sssp::new(VertexId(0)), &g);
    for (got, want) in res.values.iter().zip(&want) {
        assert!(
            (got.is_infinite() && want.is_infinite()) || (got - want).abs() < 1e-4,
            "{got} vs {want}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}
