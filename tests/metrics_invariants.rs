//! Invariants of the measurement machinery — the quantities the figure
//! harness reports must mean what they claim.

use hybridgraph::prelude::*;
use hybridgraph_core::StepKind;
use hybridgraph_graph::gen;
use std::sync::Arc;

fn graph() -> Graph {
    gen::rmat(400, 4000, gen::RmatParams::default(), 17)
}

fn run(mode: Mode, buffer: usize) -> JobMetrics {
    let cfg = JobConfig::new(mode, 4).with_buffer(buffer);
    hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &graph(), cfg)
        .unwrap()
        .metrics
}

#[test]
fn push_spills_only_past_buffer() {
    let tight = run(Mode::Push, 50);
    let loose = run(Mode::Push, usize::MAX - 1);
    assert!(
        tight.steps.iter().any(|s| s.sem.msg_spill_bytes > 0),
        "tiny buffer must spill"
    );
    assert!(
        loose.steps.iter().all(|s| s.sem.msg_spill_bytes == 0),
        "huge buffer must not spill"
    );
    assert!(tight.total_io_bytes() > loose.total_io_bytes());
}

#[test]
fn bpull_never_spills_messages() {
    let m = run(Mode::BPull, 50);
    for s in &m.steps {
        assert_eq!(
            s.sem.msg_spill_bytes, 0,
            "b-pull consumes messages in place"
        );
        assert_eq!(s.pending_messages, 0);
    }
}

#[test]
fn bpull_superstep1_exchanges_nothing() {
    // Fig. 17's note: b-pull starts exchanging messages from superstep 2.
    let m = run(Mode::BPull, 100);
    let s1 = &m.steps[0];
    assert_eq!(s1.net_out_bytes, 0);
    assert_eq!(s1.net_raw_messages, 0);
    assert!(m.steps[1].net_raw_messages > 0);
}

#[test]
fn bpull_requests_are_block_granular() {
    // Requests per superstep = V blocks broadcast to T workers.
    let m = run(Mode::BPull, 100);
    let v = m.load.num_vblocks as u64;
    let t = 4u64;
    for s in &m.steps[1..] {
        assert_eq!(s.net_requests, v * t, "superstep {}", s.superstep);
    }
    // Superstep 1 sends none.
    assert_eq!(m.steps[0].net_requests, 0);
}

#[test]
fn pull_sends_vertex_granular_requests() {
    let m = run(Mode::Pull, 100);
    let v = m.load.num_vblocks as u64;
    for s in &m.steps[1..] {
        assert!(
            s.net_requests > v * 4,
            "per-vertex requests must dwarf block requests: {} at superstep {}",
            s.net_requests,
            s.superstep
        );
    }
}

#[test]
fn combining_reduces_wire_values() {
    let combined = run(Mode::BPull, 100);
    let mut cfg = JobConfig::new(Mode::BPull, 4).with_buffer(100);
    cfg.combining = false;
    let concat = hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &graph(), cfg)
        .unwrap()
        .metrics;
    let wire = |m: &JobMetrics| m.steps.iter().map(|s| s.net_wire_values).sum::<u64>();
    let bytes = |m: &JobMetrics| m.total_net_bytes();
    assert!(wire(&combined) < wire(&concat));
    assert!(bytes(&combined) < bytes(&concat));
    // Both merge something relative to raw.
    assert!(combined.steps[2].net_saved_messages > 0);
    assert!(concat.steps[2].net_saved_messages > 0);
}

#[test]
fn eq7_eq8_formulas_hold_in_metrics() {
    for mode in [Mode::Push, Mode::BPull] {
        let m = run(mode, 60);
        for s in &m.steps {
            match s.kind {
                StepKind::Push => assert_eq!(s.cio_push_bytes, s.sem.cio_push()),
                StepKind::BPull => assert_eq!(s.cio_bpull_bytes, s.sem.cio_bpull()),
                _ => {}
            }
        }
    }
}

#[test]
fn theorem2_initial_mode_is_recorded() {
    let tight = run(Mode::Hybrid, 16);
    assert!(tight.load.b_lower_bound != 0 || tight.load.fragments > 0);
    // With a buffer under B⊥ hybrid starts in b-pull.
    if (16 * 4) <= tight.load.b_lower_bound {
        assert_eq!(tight.load.initial_mode, Mode::BPull);
        assert_eq!(tight.steps[0].kind, StepKind::BPull);
    } else {
        assert_eq!(tight.load.initial_mode, Mode::Push);
        assert_eq!(tight.steps[0].kind, StepKind::Push);
    }
}

#[test]
fn hybrid_switches_match_step_kinds() {
    // Force switching with an SSSP run (traversal tail).
    let g = gen::randomize_weights(&gen::uniform(600, 6000, 3), 1.0, 6.0, 3);
    let cfg = JobConfig::new(Mode::Hybrid, 4).with_buffer(64);
    let m = hybridgraph_core::run_job(Arc::new(Sssp::new(VertexId(0))), &g, cfg)
        .unwrap()
        .metrics;
    for &(at, from, to) in &m.switches {
        let step = &m.steps[(at - 1) as usize];
        match (from, to) {
            (Mode::BPull, Mode::Push) => assert_eq!(step.kind, StepKind::BPullThenPush),
            (Mode::Push, Mode::BPull) => assert_eq!(step.kind, StepKind::PushNoSend),
            other => panic!("impossible switch {other:?}"),
        }
    }
    // Steps after a switch run the new mode until the next switch.
    if let Some(&(at, _, to)) = m.switches.first() {
        if (at as usize) < m.steps.len() {
            let next = &m.steps[at as usize];
            assert_eq!(next.kind.mode(), to);
        }
    }
}

#[test]
fn modeled_time_scales_with_slower_disk() {
    let g = graph();
    let mk = |profile| {
        let cfg = JobConfig::new(Mode::Push, 4)
            .with_buffer(50)
            .with_profile(profile);
        hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &g, cfg)
            .unwrap()
            .metrics
    };
    let hdd = mk(DeviceProfile::local_hdd());
    let ssd = mk(DeviceProfile::amazon_ssd());
    assert!(hdd.modeled_total_secs() > ssd.modeled_total_secs());
    // Byte counts are hardware-independent.
    assert_eq!(hdd.total_io_bytes(), ssd.total_io_bytes());
    assert_eq!(hdd.total_net_bytes(), ssd.total_net_bytes());
}

#[test]
fn memory_usage_shrinks_with_more_blocks() {
    // Fig. 23: the receive buffer shrinks as V grows. Concatenate-only
    // LPA makes the buffer proportional to per-block in-degree mass, so
    // the effect dominates the (V-proportional) metadata even at test
    // scale.
    let g = graph();
    let mem = |per_worker: usize| {
        let mut cfg = JobConfig::new(Mode::BPull, 4).with_buffer(200);
        cfg.vblocks_per_worker = Some(per_worker);
        hybridgraph_core::run_job(Arc::new(Lpa::new(4)), &g, cfg)
            .unwrap()
            .metrics
            .peak_memory_bytes()
    };
    assert!(mem(1) > mem(16), "{} vs {}", mem(1), mem(16));
}

#[test]
fn io_grows_with_more_blocks() {
    let g = graph();
    let io = |per_worker: usize| {
        let mut cfg = JobConfig::new(Mode::BPull, 4).with_buffer(200);
        cfg.vblocks_per_worker = Some(per_worker);
        hybridgraph_core::run_job(Arc::new(PageRank::new(5)), &g, cfg)
            .unwrap()
            .metrics
            .total_io_bytes()
    };
    // Fig. 24: I/O bytes grow with V (Theorem 1).
    assert!(io(32) > io(1), "{} vs {}", io(32), io(1));
}

#[test]
fn load_report_counts_fragments() {
    let m = run(Mode::BPull, 100);
    assert!(m.load.fragments > 0);
    assert!(m.load.num_vblocks >= 4);
    assert!(m.load.io.seq_write_bytes > 0);
    assert_eq!(
        m.load.b_lower_bound,
        (4000 / 2) as i64 - m.load.fragments as i64
    );
}
