//! Round-trip property tests for the framed on-disk record formats:
//! fixed-width [`Record`] slices, codec blob frames, and the
//! checkpoint / message-log file formats (v1 uncompressed and v2 coded).
//!
//! Each seeded case prints its seed on failure so a regression is
//! reproducible from the assertion message alone.

use hybridgraph::storage::checkpoint::{checkpoint_file_name, CheckpointReader, CheckpointWriter};
use hybridgraph::storage::msg_log::{msg_log_file_name, MsgLogReader, MsgLogWriter};
use hybridgraph::storage::record::{decode_slice, encode_slice};
use hybridgraph::storage::{AccessClass, CodecChoice, MemVfs, Record, Vfs};
use hybridgraph_codec::{decode_blob_frame, encode_blob_frame};
use hybridgraph_graph::rng::SplitMix64;
use hybridgraph_graph::VertexId;

const SEEDS: [u64; 4] = [1, 42, 0xdead_beef, 0x0123_4567_89ab_cdef];

// ---------------------------------------------------------------- records

#[test]
fn record_slices_roundtrip_randomized() {
    for seed in SEEDS {
        let mut r = SplitMix64::new(seed);
        for _ in 0..50 {
            let n = r.range_usize(0, 64);
            let pairs: Vec<(VertexId, f64)> = (0..n)
                .map(|_| (VertexId(r.next_u64() as u32), f64::from_bits(r.next_u64())))
                .collect();
            let bytes = encode_slice(&pairs);
            assert_eq!(bytes.len(), n * <(VertexId, f64)>::BYTES, "seed {seed}");
            let back = decode_slice::<(VertexId, f64)>(&bytes);
            // Bit-level comparison: NaN payloads must survive too.
            assert_eq!(back.len(), pairs.len(), "seed {seed}");
            for (a, b) in back.iter().zip(&pairs) {
                assert_eq!(a.0, b.0, "seed {seed}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "seed {seed}");
            }
        }
    }
}

#[test]
fn empty_record_slice_roundtrips() {
    let bytes = encode_slice::<u64>(&[]);
    assert!(bytes.is_empty());
    assert!(decode_slice::<u64>(&bytes).is_empty());
}

// ------------------------------------------------------------ blob frames

#[test]
fn blob_frames_roundtrip_randomized() {
    for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
        for seed in SEEDS {
            let mut r = SplitMix64::new(seed);
            for _ in 0..25 {
                let n = r.range_usize(0, 2000);
                // Mix of runs (compressible) and noise (incompressible).
                let raw: Vec<u8> = (0..n)
                    .map(|i| {
                        if r.next_bool() {
                            (i / 17) as u8
                        } else {
                            r.next_u64() as u8
                        }
                    })
                    .collect();
                let frame = encode_blob_frame(codec, &raw);
                let mut pos = 0;
                let back = decode_blob_frame(&frame, &mut pos).expect("decode");
                assert_eq!(back, raw, "{codec:?} seed {seed}");
                assert_eq!(pos, frame.len(), "{codec:?} seed {seed}");
            }
        }
    }
}

#[test]
fn empty_blob_frame_roundtrips() {
    for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
        let frame = encode_blob_frame(codec, &[]);
        let mut pos = 0;
        assert!(decode_blob_frame(&frame, &mut pos)
            .expect("decode")
            .is_empty());
        assert_eq!(pos, frame.len());
    }
}

#[test]
fn truncated_blob_frame_is_an_error_not_a_panic() {
    let raw: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
    for codec in CodecChoice::ALL.into_iter().filter(|c| !c.is_none()) {
        let frame = encode_blob_frame(codec, &raw);
        for cut in 0..frame.len() {
            let mut pos = 0;
            assert!(
                decode_blob_frame(&frame[..cut], &mut pos).is_err(),
                "{codec:?}: truncation at {cut}/{} must error",
                frame.len()
            );
        }
    }
}

// ------------------------------------------------------------ checkpoints

fn roundtrip_checkpoint(codec: CodecChoice, fields: &[Vec<u8>], words: &[u64]) {
    let vfs = MemVfs::new();
    let mut w = CheckpointWriter::new(9);
    for f in fields {
        w.put_bytes(f);
    }
    w.put_words(words);
    w.put_f64(f64::NAN);
    w.commit_with(&vfs, codec).expect("commit");
    let mut r = CheckpointReader::open(&vfs, 9).expect("open");
    assert_eq!(r.superstep(), 9);
    for f in fields {
        assert_eq!(&r.get_bytes().expect("field"), f, "{codec:?}");
    }
    assert_eq!(r.get_words().expect("words"), words, "{codec:?}");
    assert!(r.get_f64().expect("f64").is_nan(), "{codec:?}");
}

#[test]
fn checkpoint_empty_payloads_roundtrip_all_codecs() {
    for codec in CodecChoice::ALL {
        // Zero-length byte runs and an empty word run are legal fields.
        roundtrip_checkpoint(codec, &[vec![], vec![]], &[]);
    }
}

#[test]
fn checkpoint_max_length_fields_roundtrip_all_codecs() {
    let mut r = SplitMix64::new(7);
    // A large field dwarfing the header, with incompressible content.
    let big: Vec<u8> = (0..1 << 16).map(|_| r.next_u64() as u8).collect();
    let words: Vec<u64> = (0..4096).map(|_| r.next_u64()).collect();
    for codec in CodecChoice::ALL {
        roundtrip_checkpoint(codec, &[big.clone(), vec![0xab; 3]], &words);
    }
}

#[test]
fn truncated_checkpoint_rejected_all_codecs() {
    for codec in CodecChoice::ALL {
        let vfs = MemVfs::new();
        let mut w = CheckpointWriter::new(3);
        w.put_bytes(&[7u8; 4096]);
        w.commit_with(&vfs, codec).expect("commit");
        let file = vfs.open(&checkpoint_file_name(3)).expect("open file");
        let len = file.len();
        // Descending cuts: each truncate_to actually shrinks the file.
        for cut in [len - 1, len / 2, 1, 0] {
            file.truncate_to(cut).expect("truncate");
            assert!(
                CheckpointReader::open(&vfs, 3).is_err(),
                "{codec:?}: checkpoint cut to {cut}/{len} must be rejected"
            );
        }
    }
}

#[test]
fn oversized_field_length_is_an_error_not_a_panic() {
    // A field whose declared length overruns the body must surface as a
    // read error when decoded, not index out of bounds.
    let vfs = MemVfs::new();
    let mut w = CheckpointWriter::new(1);
    w.put_u64(u64::MAX); // masquerades as a huge byte-run length
    w.commit(&vfs).expect("commit");
    let mut r = CheckpointReader::open(&vfs, 1).expect("open");
    assert!(r.get_bytes().is_err());
}

// ------------------------------------------------------------- msg logs

#[test]
fn msg_log_roundtrips_randomized_all_codecs() {
    for codec in CodecChoice::ALL {
        for seed in SEEDS {
            let mut r = SplitMix64::new(seed);
            let entries: Vec<(u32, Vec<u8>)> = (0..r.range_usize(0, 40))
                .map(|_| {
                    let blob: Vec<u8> = (0..r.range_usize(0, 300))
                        .map(|_| r.next_u64() as u8)
                        .collect();
                    (r.next_u64() as u32, blob)
                })
                .collect();
            let vfs = MemVfs::new();
            let mut w = MsgLogWriter::new(5);
            for (d, b) in &entries {
                w.push(*d, b);
            }
            w.commit_with(&vfs, codec).expect("commit");
            let mut rd = MsgLogReader::open(&vfs, 5).expect("open");
            assert_eq!(rd.superstep(), 5, "{codec:?} seed {seed}");
            let got = rd.read_all_entries().expect("entries");
            assert_eq!(got, entries, "{codec:?} seed {seed}");
        }
    }
}

#[test]
fn msg_log_empty_payload_entries_roundtrip() {
    for codec in CodecChoice::ALL {
        let vfs = MemVfs::new();
        let mut w = MsgLogWriter::new(2);
        w.push(11, &[]);
        w.push(12, &[]);
        w.commit_with(&vfs, codec).expect("commit");
        let got = MsgLogReader::open(&vfs, 2)
            .expect("open")
            .read_all_entries()
            .expect("entries");
        assert_eq!(got, vec![(11, vec![]), (12, vec![])], "{codec:?}");
    }
}

#[test]
fn truncated_msg_log_rejected_all_codecs() {
    for codec in CodecChoice::ALL {
        let vfs = MemVfs::new();
        let mut w = MsgLogWriter::new(6);
        for i in 0..32u32 {
            w.push(i, &[i as u8; 100]);
        }
        w.commit_with(&vfs, codec).expect("commit");
        let file = vfs.open(&msg_log_file_name(6)).expect("open file");
        let len = file.len();
        // Descending cuts: each truncate_to actually shrinks the file.
        for cut in [len - 1, len / 2, 5, 0] {
            file.truncate_to(cut).expect("truncate");
            let complete = MsgLogReader::open(&vfs, 6)
                .and_then(|mut r| r.read_all_entries())
                .is_ok();
            assert!(
                !complete,
                "{codec:?}: log cut to {cut}/{len} must not read back cleanly"
            );
        }
    }
}

// With `CodecChoice::None` the coded commit path must produce the exact
// v1 byte stream — the no-codec invariant at the file-format level.
#[test]
fn none_codec_files_are_byte_identical_to_v1() {
    let build = |coded: bool| -> (Vec<u8>, Vec<u8>) {
        let vfs = MemVfs::new();
        let mut cw = CheckpointWriter::new(4);
        cw.put_bytes(b"payload");
        cw.put_u32(77);
        let mut lw = MsgLogWriter::new(4);
        lw.push(9, b"entry");
        if coded {
            cw.commit_with(&vfs, CodecChoice::None).expect("commit");
            lw.commit_with(&vfs, CodecChoice::None).expect("commit");
        } else {
            cw.commit(&vfs).expect("commit");
            lw.commit(&vfs).expect("commit");
        }
        let read = |name: &str| {
            vfs.open(name)
                .expect("open")
                .read_all(AccessClass::SeqRead)
                .expect("read")
        };
        (read(&checkpoint_file_name(4)), read(&msg_log_file_name(4)))
    };
    assert_eq!(build(true), build(false));
}
