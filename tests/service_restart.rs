//! Durable `GraphService` end-to-end: master-failure recovery must be
//! byte-exact. A run killed at any seeded master kill point and revived
//! through `GraphService::restore` / `resume_job` must produce the same
//! vertex values, the same `Q_t` audit bytes and the same trace as the
//! uninterrupted run — and survivors of a crashed tenant must not be
//! perturbed. Graceful degradation rides along: admission shedding under
//! recovery backlog and typed retry of transient log errors.

use hybridgraph::prelude::*;
use hybridgraph_core::encode_qt_audits;
use hybridgraph_obs::export_chrome_trace;
use std::sync::Arc;

fn graph_a() -> Graph {
    hybridgraph_graph::gen::rmat(256, 2048, hybridgraph_graph::gen::RmatParams::default(), 11)
}

fn graph_b() -> Graph {
    hybridgraph_graph::gen::uniform(200, 1600, 5)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn service_cfg(seed: u64) -> ServiceConfig {
    ServiceConfig {
        // The byte-identity matrix runs one job at a time: restart
        // replays the crashed tenant alone, so cross-tenant interleaving
        // stays out of the equality frame.
        max_resident_jobs: 1,
        max_queued_jobs: 4,
        cache_bytes: 32 * 1024,
        cache_slots: 8,
        seed,
        max_job_logical_io: None,
        max_job_memory: None,
        recovery_shed_threshold: 8,
    }
}

/// Checkpoint every superstep so every kill point has a durable cut at
/// distance one; fault-aware spacing stays off inside the equality frame
/// (the killed run observes a failure, the baseline does not).
fn pagerank_cfg(workers: usize) -> JobConfig {
    let mut cfg = JobConfig::new(Mode::Hybrid, workers)
        .with_buffer(2048)
        .with_checkpoint(CheckpointPolicy::EveryK(1));
    cfg.initial_mode_override = Some(Mode::Push);
    cfg
}

struct RunBytes {
    values: Vec<u64>,
    audits: Vec<u8>,
    trace: String,
}

/// One uninterrupted durable run of PageRank over `graph_a`.
fn uninterrupted(seed: u64) -> RunBytes {
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let svc =
        GraphService::new_durable(service_cfg(seed), Arc::clone(&vfs), CodecChoice::None).unwrap();
    svc.register_graph("a", graph_a(), GraphSpec::new(3).with_vblocks(2))
        .unwrap();
    let sink = Arc::new(TraceSink::new(3));
    let r = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3).with_trace(Arc::clone(&sink))),
        )
        .unwrap()
        .wait()
        .unwrap();
    RunBytes {
        values: bits(&r.values),
        audits: encode_qt_audits(&r.metrics.qt_audit),
        trace: export_chrome_trace(&sink),
    }
}

/// The same run killed at `point`, then revived from the log on the same
/// VFS and resumed to completion.
fn killed_and_restored(seed: u64, point: MasterKillPoint) -> RunBytes {
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let cfg = service_cfg(seed);
    let svc = GraphService::new_durable(cfg, Arc::clone(&vfs), CodecChoice::None).unwrap();
    svc.register_graph("a", graph_a(), GraphSpec::new(3).with_vblocks(2))
        .unwrap();
    let sink = Arc::new(TraceSink::new(3));
    let plan = FaultPlan::new().master_kill(point);
    let err = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new(
                "a",
                pagerank_cfg(3)
                    .with_trace(Arc::clone(&sink))
                    .with_fault_plan(Arc::new(plan)),
            ),
        )
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(
        matches!(err, JobError::Halted { .. }),
        "expected a master halt at {point:?}, got {err}"
    );
    drop(svc);
    drop(sink); // died with the process; the resumed job gets a fresh one

    let (svc, recovered) = GraphService::restore(cfg, Arc::clone(&vfs)).unwrap();
    assert_eq!(recovered.len(), 1, "one unfinished job must come back");
    let rec = &recovered[0];
    assert_eq!(rec.graph, "a");
    assert!(!rec.queued, "the job held a lane when the master died");
    let sink = Arc::new(TraceSink::new(3));
    let r = svc
        .resume_job(
            Arc::new(PageRank::new(4)),
            pagerank_cfg(3).with_trace(Arc::clone(&sink)),
            rec,
        )
        .unwrap()
        .wait()
        .unwrap();
    RunBytes {
        values: bits(&r.values),
        audits: encode_qt_audits(&r.metrics.qt_audit),
        trace: export_chrome_trace(&sink),
    }
}

/// The acceptance matrix: every kill point × every seed, killed-and-
/// restored must equal uninterrupted byte for byte — vertex values,
/// `Q_t` audit bytes, and the full modeled-time trace.
#[test]
fn kill_matrix_restarts_byte_identical() {
    let points = [
        MasterKillPoint::Load,
        MasterKillPoint::MidBarrier(2),
        MasterKillPoint::BetweenGrants(2),
    ];
    for seed in [1u64, 7, 42, 1337] {
        let base = uninterrupted(seed);
        for point in points {
            let restarted = killed_and_restored(seed, point);
            assert_eq!(
                base.values, restarted.values,
                "seed {seed} {point:?}: values diverged after restart"
            );
            assert_eq!(
                base.audits, restarted.audits,
                "seed {seed} {point:?}: Q_t audit bytes diverged after restart"
            );
            assert_eq!(
                base.trace, restarted.trace,
                "seed {seed} {point:?}: trace diverged after restart"
            );
        }
    }
}

/// Seeded chaos: `random_master_kills` picks the kill superstep from the
/// seed; whatever it picks, the restarted run must still be byte-exact.
#[test]
fn random_kill_points_restart_byte_identical() {
    for chaos_seed in [3u64, 99] {
        let plan = FaultPlan::random_master_kills(chaos_seed, 3, 1);
        let spec = plan.master_kill_spec();
        assert_eq!(spec.len(), 1);
        let base = uninterrupted(11);
        let restarted = killed_and_restored(11, spec[0]);
        assert_eq!(
            base.values, restarted.values,
            "chaos seed {chaos_seed} ({:?}): values diverged",
            spec[0]
        );
        assert_eq!(
            base.trace, restarted.trace,
            "chaos seed {chaos_seed} ({:?}): trace diverged",
            spec[0]
        );
    }
}

/// A crashed tenant must not perturb its surviving neighbour: the
/// survivor's values match its solo baseline, and the crashed job —
/// resumed after restore — matches its own uninterrupted baseline.
#[test]
fn survivor_unperturbed_by_master_crash() {
    // Solo durable baselines.
    let base_a = uninterrupted(13);
    let base_b = {
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let svc = GraphService::new_durable(service_cfg(13), Arc::clone(&vfs), CodecChoice::None)
            .unwrap();
        svc.register_graph("b", graph_b(), GraphSpec::new(3))
            .unwrap();
        let r = svc
            .submit(
                Arc::new(PageRank::new(4)),
                JobRequest::new("b", pagerank_cfg(3)),
            )
            .unwrap()
            .wait()
            .unwrap();
        bits(&r.values)
    };

    // Two tenants, job-a's master killed mid-barrier. Job-b must finish
    // with baseline values; sched.leave on the halt keeps the cohort
    // barrier from deadlocking the survivor.
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let mut cfg = service_cfg(13);
    cfg.max_resident_jobs = 2;
    let svc = GraphService::new_durable(cfg, Arc::clone(&vfs), CodecChoice::None).unwrap();
    svc.register_graph("a", graph_a(), GraphSpec::new(3).with_vblocks(2))
        .unwrap();
    svc.register_graph("b", graph_b(), GraphSpec::new(3))
        .unwrap();
    let pause = svc.pause_scheduling();
    let t_a = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new(
                "a",
                pagerank_cfg(3).with_fault_plan(Arc::new(
                    FaultPlan::new().master_kill(MasterKillPoint::MidBarrier(2)),
                )),
            ),
        )
        .unwrap();
    let t_b = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("b", pagerank_cfg(3)),
        )
        .unwrap();
    drop(pause);
    let err_a = t_a.wait().unwrap_err();
    assert!(matches!(err_a, JobError::Halted { .. }), "{err_a}");
    let r_b = t_b.wait().unwrap();
    assert_eq!(
        base_b,
        bits(&r_b.values),
        "survivor was perturbed by the neighbour's master crash"
    );
    drop(svc);

    // Revive the crashed tenant; it must reach its own baseline values.
    let (svc, recovered) = GraphService::restore(cfg, Arc::clone(&vfs)).unwrap();
    let rec = recovered
        .iter()
        .find(|r| r.graph == "a")
        .expect("crashed job must be recovered");
    let r_a = svc
        .resume_job(Arc::new(PageRank::new(4)), pagerank_cfg(3), rec)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        base_a.values,
        bits(&r_a.values),
        "crashed tenant diverged from baseline after restore"
    );
}

/// Restore rebuilds the control plane from the log alone: the catalog
/// (without re-parsing a source), the job-id sequence, and the recovery
/// backlog used for admission shedding.
#[test]
fn restore_rebuilds_catalog_and_sheds_until_resumed() {
    let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
    let mut cfg = service_cfg(21);
    cfg.recovery_shed_threshold = 0; // any backlog sheds fresh load
    let svc = GraphService::new_durable(cfg, Arc::clone(&vfs), CodecChoice::None).unwrap();
    svc.register_graph("a", graph_a(), GraphSpec::new(3).with_vblocks(2))
        .unwrap();
    svc.register_graph("gone", graph_b(), GraphSpec::new(2))
        .unwrap();
    svc.evict("gone").unwrap();
    let killed = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new(
                "a",
                pagerank_cfg(3).with_fault_plan(Arc::new(
                    FaultPlan::new().master_kill(MasterKillPoint::BetweenGrants(1)),
                )),
            ),
        )
        .unwrap();
    let killed_id = killed.job_id();
    assert!(matches!(
        killed.wait().unwrap_err(),
        JobError::Halted { .. }
    ));
    drop(svc);

    assert!(GraphService::log_exists(vfs.as_ref()));
    let (svc, recovered) = GraphService::restore(cfg, Arc::clone(&vfs)).unwrap();
    // Catalog replayed: the evicted graph stays gone, the live one is
    // back with its registered layout.
    assert_eq!(svc.registered_graphs(), 1);
    assert_eq!(svc.workers_of("a"), Some(3));
    assert_eq!(svc.workers_of("gone"), None);
    assert!(svc.is_durable());
    assert!(svc.service_log_bytes() > 0);

    // One recovered job, resumable from its superstep-1 cut; until it is
    // resumed the backlog sheds fresh submissions.
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered[0].job_id, killed_id);
    assert_eq!(recovered[0].superstep, Some(1));
    assert_eq!(svc.recovery_backlog(), 1);
    let err = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            AdmissionError::Overloaded {
                backlog: 1,
                threshold: 0
            }
        ),
        "{err}"
    );

    let resumed = svc
        .resume_job(Arc::new(PageRank::new(4)), pagerank_cfg(3), &recovered[0])
        .unwrap();
    assert_eq!(resumed.job_id(), killed_id, "resumed job keeps its id");
    resumed.wait().unwrap();
    assert_eq!(svc.recovery_backlog(), 0);

    // Backlog drained: fresh admissions flow again, with a fresh id.
    let fresh = svc
        .submit(
            Arc::new(PageRank::new(4)),
            JobRequest::new("a", pagerank_cfg(3)),
        )
        .unwrap();
    assert!(fresh.job_id() > killed_id, "job ids must not be reused");
    fresh.wait().unwrap();
}
