//! Cross-mode equivalence: every message-handling strategy must compute
//! the same results as the sequential reference executor. This is the
//! repository's strongest correctness check — push, pushM, pull, b-pull
//! and hybrid share nothing but the `VertexProgram`, the partition, and
//! the BSP contract.

use hybridgraph::prelude::*;
use hybridgraph_algos::reference::reference_run;
use hybridgraph_algos::wcc::symmetrize;
use hybridgraph_graph::gen;
use std::sync::Arc;

fn modes_for(combinable: bool) -> Vec<Mode> {
    if combinable {
        vec![
            Mode::Push,
            Mode::PushM,
            Mode::Pull,
            Mode::BPull,
            Mode::Hybrid,
        ]
    } else {
        // pushM requires a combiner.
        vec![Mode::Push, Mode::Pull, Mode::BPull, Mode::Hybrid]
    }
}

fn cfgs(mode: Mode) -> Vec<JobConfig> {
    vec![
        // Sufficient memory, several workers.
        JobConfig::new(mode, 4),
        // Limited memory: spill, small blocks.
        JobConfig::new(mode, 3).with_buffer(64),
        // Single worker degenerate case.
        JobConfig::new(mode, 1).with_buffer(32),
        // More workers than some blocks would like.
        JobConfig::new(mode, 7).with_buffer(128),
    ]
}

#[test]
fn pagerank_all_modes_match_reference() {
    let g = gen::rmat(256, 2048, gen::RmatParams::default(), 11);
    let program = PageRank::new(5);
    let want = reference_run(&program, &g);
    for mode in modes_for(true) {
        for cfg in cfgs(mode) {
            let workers = cfg.workers;
            let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(res.values.len(), g.num_vertices());
            for (v, (got, want)) in res.values.iter().zip(&want).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1e-12),
                    "{mode:?} x{workers}: v{v}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn sssp_all_modes_match_reference() {
    let g = gen::randomize_weights(&gen::uniform(200, 1200, 5), 1.0, 4.0, 6);
    let program = Sssp::new(VertexId(0));
    let want = reference_run(&program, &g);
    for mode in modes_for(true) {
        for cfg in cfgs(mode) {
            let workers = cfg.workers;
            let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            for (v, (got, want)) in res.values.iter().zip(&want).enumerate() {
                if want.is_infinite() {
                    assert!(got.is_infinite(), "{mode:?} x{workers}: v{v} reachable?");
                } else {
                    assert!(
                        (got - want).abs() < 1e-4,
                        "{mode:?} x{workers}: v{v}: {got} vs {want}"
                    );
                }
            }
        }
    }
}

#[test]
fn lpa_all_modes_match_reference() {
    let g = gen::rmat(128, 1024, gen::RmatParams::web(), 3);
    let program = Lpa::new(4);
    let want = reference_run(&program, &g);
    for mode in modes_for(false) {
        for cfg in cfgs(mode) {
            let workers = cfg.workers;
            let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(res.values, want, "{mode:?} x{workers}");
        }
    }
}

#[test]
fn sa_all_modes_match_reference() {
    let g = gen::uniform(150, 900, 8);
    let program = Sa::new(6, 42);
    let want = reference_run(&program, &g);
    for mode in modes_for(false) {
        for cfg in cfgs(mode) {
            let workers = cfg.workers;
            let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(res.values, want, "{mode:?} x{workers}");
        }
    }
}

#[test]
fn wcc_all_modes_match_reference() {
    let g = symmetrize(&gen::uniform(120, 300, 2));
    let program = Wcc::new();
    let want = reference_run(&program, &g);
    for mode in modes_for(true) {
        for cfg in cfgs(mode) {
            let workers = cfg.workers;
            let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(res.values, want, "{mode:?} x{workers}");
        }
    }
}

#[test]
fn combining_disabled_still_correct() {
    // Fig. 18 disables b-pull's combining; results must not change.
    let g = gen::uniform(100, 700, 4);
    let program = PageRank::new(4);
    let want = reference_run(&program, &g);
    for mode in [Mode::BPull, Mode::Hybrid, Mode::Pull] {
        let mut cfg = JobConfig::new(mode, 3).with_buffer(128);
        cfg.combining = false;
        let res = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        for (got, want) in res.values.iter().zip(&want) {
            assert!((got - want).abs() <= 1e-9, "{mode:?}: {got} vs {want}");
        }
    }
}

#[test]
fn pre_pull_disabled_still_correct() {
    let g = gen::uniform(90, 500, 9);
    let program = Sssp::new(VertexId(1));
    let want = reference_run(&program, &g);
    let mut cfg = JobConfig::new(Mode::BPull, 3).with_buffer(64);
    cfg.pre_pull = false;
    let res = run_job(Arc::new(program), &g, cfg).unwrap();
    for (got, want) in res.values.iter().zip(&want) {
        assert!(
            (got.is_infinite() && want.is_infinite()) || (got - want).abs() < 1e-4,
            "{got} vs {want}"
        );
    }
}
