//! Randomized cross-mode equivalence on seeded random graphs and
//! configurations: exact-valued programs (WCC, LPA) must agree
//! byte-for-byte across all strategies and with the sequential reference.
//!
//! Formerly proptest-based; rewritten as plain seeded loops over a
//! [`SplitMix64`] stream so the workspace builds offline.

use hybridgraph::prelude::*;
use hybridgraph_algos::reference::reference_run;
use hybridgraph_graph::gen;
use hybridgraph_graph::rng::SplitMix64;
use std::sync::Arc;

// Each case runs 4-5 full distributed jobs; keep the count modest.
const CASES: usize = 12;

#[test]
fn wcc_exact_across_modes() {
    let mut r = SplitMix64::new(0x1CC);
    for _ in 0..CASES {
        let n = r.range_usize(8, 120);
        let m = r.range_usize(1, 500);
        let t = r.range_usize(1, 6);
        let buffer = r.range_usize(8, 256);
        let seed = r.next_u64() % 10_000;
        let g = hybridgraph_algos::wcc::symmetrize(&gen::uniform(n, m, seed));
        let program = Wcc::new();
        let want = reference_run(&program, &g);
        for mode in [
            Mode::Push,
            Mode::PushM,
            Mode::Pull,
            Mode::BPull,
            Mode::Hybrid,
        ] {
            let cfg = JobConfig::new(mode, t).with_buffer(buffer);
            let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(&res.values, &want, "{:?} t={} buf={}", mode, t, buffer);
        }
    }
}

#[test]
fn lpa_exact_across_modes() {
    let mut r = SplitMix64::new(0x17A);
    for _ in 0..CASES {
        let n = r.range_usize(8, 100);
        let m = r.range_usize(1, 400);
        let t = r.range_usize(1, 5);
        let buffer = r.range_usize(8, 128);
        let seed = r.next_u64() % 10_000;
        let g = gen::uniform(n, m, seed);
        let program = Lpa::new(4);
        let want = reference_run(&program, &g);
        for mode in [Mode::Push, Mode::Pull, Mode::BPull, Mode::Hybrid] {
            let cfg = JobConfig::new(mode, t).with_buffer(buffer);
            let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(&res.values, &want, "{:?} t={} buf={}", mode, t, buffer);
        }
    }
}

#[test]
fn sssp_close_across_modes() {
    let mut r = SplitMix64::new(0x555);
    for _ in 0..CASES {
        let n = r.range_usize(8, 120);
        let m = r.range_usize(1, 500);
        let t = r.range_usize(1, 6);
        let source = r.below_u32(8);
        let seed = r.next_u64() % 10_000;
        let g = gen::randomize_weights(&gen::uniform(n, m, seed), 1.0, 3.0, seed);
        let source = VertexId(source % n as u32);
        let program = Sssp::new(source);
        let want = reference_run(&program, &g);
        for mode in [Mode::PushM, Mode::BPull, Mode::Hybrid] {
            let cfg = JobConfig::new(mode, t).with_buffer(32);
            let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            for (v, (got, want)) in res.values.iter().zip(&want).enumerate() {
                assert!(
                    (got.is_infinite() && want.is_infinite()) || (got - want).abs() < 1e-4,
                    "{:?}: v{} {} vs {}",
                    mode,
                    v,
                    got,
                    want
                );
            }
        }
    }
}
