//! Property-based cross-mode equivalence on randomly generated graphs
//! and configurations: exact-valued programs (WCC, LPA) must agree
//! byte-for-byte across all strategies and with the sequential reference.

use hybridgraph::prelude::*;
use hybridgraph_algos::reference::reference_run;
use hybridgraph_graph::gen;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    // Each case runs 4-5 full distributed jobs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn wcc_exact_across_modes(
        n in 8usize..120,
        m in 1usize..500,
        t in 1usize..6,
        buffer in 8usize..256,
        seed in 0u64..10_000,
    ) {
        let g = hybridgraph_algos::wcc::symmetrize(&gen::uniform(n, m, seed));
        let program = Wcc::new();
        let want = reference_run(&program, &g);
        for mode in [Mode::Push, Mode::PushM, Mode::Pull, Mode::BPull, Mode::Hybrid] {
            let cfg = JobConfig::new(mode, t).with_buffer(buffer);
            let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            prop_assert_eq!(&res.values, &want, "{:?} t={} buf={}", mode, t, buffer);
        }
    }

    #[test]
    fn lpa_exact_across_modes(
        n in 8usize..100,
        m in 1usize..400,
        t in 1usize..5,
        buffer in 8usize..128,
        seed in 0u64..10_000,
    ) {
        let g = gen::uniform(n, m, seed);
        let program = Lpa::new(4);
        let want = reference_run(&program, &g);
        for mode in [Mode::Push, Mode::Pull, Mode::BPull, Mode::Hybrid] {
            let cfg = JobConfig::new(mode, t).with_buffer(buffer);
            let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            prop_assert_eq!(&res.values, &want, "{:?} t={} buf={}", mode, t, buffer);
        }
    }

    #[test]
    fn sssp_close_across_modes(
        n in 8usize..120,
        m in 1usize..500,
        t in 1usize..6,
        source in 0u32..8,
        seed in 0u64..10_000,
    ) {
        let g = gen::randomize_weights(&gen::uniform(n, m, seed), 1.0, 3.0, seed);
        let source = VertexId(source % n as u32);
        let program = Sssp::new(source);
        let want = reference_run(&program, &g);
        for mode in [Mode::PushM, Mode::BPull, Mode::Hybrid] {
            let cfg = JobConfig::new(mode, t).with_buffer(32);
            let res = hybridgraph_core::run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            for (v, (got, want)) in res.values.iter().zip(&want).enumerate() {
                prop_assert!(
                    (got.is_infinite() && want.is_infinite())
                        || (got - want).abs() < 1e-4,
                    "{:?}: v{} {} vs {}",
                    mode,
                    v,
                    got,
                    want
                );
            }
        }
    }
}
