//! Checkpoint/recovery correctness: injected worker failures must leave
//! no trace in the computed values.
//!
//! The engine's executors are order-deterministic (per-sender message
//! accumulators merged in worker order, canonical inbox sorting), so
//! these tests can demand *bit-identical* `f64` results between a
//! fault-free run and a run that lost workers and rolled back — not just
//! agreement within a tolerance.

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use std::sync::Arc;

fn pagerank_graph() -> Graph {
    gen::rmat(256, 2048, gen::RmatParams::default(), 11)
}

fn sssp_graph() -> Graph {
    gen::randomize_weights(&gen::uniform(200, 1200, 5), 1.0, 4.0, 6)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn bits32(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Asserts two runs computed bit-identical values and matching semantic
/// I/O per superstep.
fn assert_equivalent(clean: &JobResult<PageRank>, faulted: &JobResult<PageRank>, label: &str) {
    assert_eq!(
        bits(&clean.values),
        bits(&faulted.values),
        "{label}: values diverged after recovery"
    );
    assert_eq!(
        clean.metrics.steps.len(),
        faulted.metrics.steps.len(),
        "{label}: superstep counts diverged"
    );
    for (c, f) in clean.metrics.steps.iter().zip(&faulted.metrics.steps) {
        assert_eq!(c.kind, f.kind, "{label}: superstep {} kind", c.superstep);
        assert_eq!(
            c.sem, f.sem,
            "{label}: superstep {} semantic bytes",
            c.superstep
        );
    }
}

use hybridgraph_core::runner::JobResult;

/// The headline scenario: worker 2 dies at superstep 5 of a 20-superstep
/// hybrid PageRank with checkpoints every 3 supersteps. The job must
/// finish with values bit-identical to a fault-free run, after at least
/// one rollback, with the checkpoint bytes visible as classified
/// sequential writes.
#[test]
fn hybrid_pagerank_recovers_bit_identical_after_kill() {
    let g = pagerank_graph();
    let program = PageRank::new(20);
    let base = JobConfig::new(Mode::Hybrid, 4).with_buffer(256);

    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
    assert_eq!(clean.metrics.recovery.rollbacks, 0);
    assert_eq!(clean.metrics.recovery.checkpoints_taken, 0);

    let plan = Arc::new(FaultPlan::new().kill(2, 5, FaultPhase::Compute));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(3))
        .with_fault_plan(Arc::clone(&plan));
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();

    assert_equivalent(&clean, &faulted, "hybrid pagerank");
    let rec = &faulted.metrics.recovery;
    assert_eq!(plan.fired(), 1, "the kill order must have fired");
    assert_eq!(rec.rollbacks, 1, "one failure, one rollback");
    assert_eq!(rec.failures.len(), 1);
    assert_eq!(rec.failures[0].worker, 2);
    assert_eq!(rec.failures[0].superstep, 5);
    // Rolled back from superstep 5 to the checkpoint at 3: supersteps 4
    // and 5 are re-executed.
    assert_eq!(rec.recomputed_supersteps, 2);
    // Baseline at 0 plus every 3rd superstep, re-taken ones included.
    assert!(rec.checkpoints_taken >= 7, "got {}", rec.checkpoints_taken);
    assert!(rec.checkpoint_bytes > 0);
    // Every checkpoint byte is a classified sequential write.
    assert_eq!(rec.checkpoint_io.seq_write_bytes, rec.checkpoint_bytes);
}

/// Without checkpoints, a worker failure fails the job with a typed
/// error instead of panicking.
#[test]
fn never_policy_fails_fast_with_typed_error() {
    let g = pagerank_graph();
    let plan = Arc::new(FaultPlan::new().kill(2, 5, FaultPhase::Compute));
    let cfg = JobConfig::new(Mode::Hybrid, 4)
        .with_buffer(256)
        .with_fault_plan(plan);
    match run_job(Arc::new(PageRank::new(20)), &g, cfg) {
        Err(JobError::WorkerFailed {
            worker,
            superstep,
            error,
        }) => {
            assert_eq!(worker, 2);
            assert_eq!(superstep, 5);
            assert!(error.contains("injected fault"), "got: {error}");
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("job must not survive an unrecoverable failure"),
    }
}

/// Kills in every lifecycle phase — loading, before compute, and at the
/// barrier — must all recover to bit-identical values, in both b-pull
/// and hybrid modes.
#[test]
fn every_phase_and_mode_recovers() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    for mode in [Mode::BPull, Mode::Hybrid] {
        let base = JobConfig::new(mode, 3).with_buffer(128);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        for phase in FaultPhase::ALL {
            let superstep = match phase {
                FaultPhase::Load => 0,
                _ => 4,
            };
            let plan = Arc::new(FaultPlan::new().kill(1, superstep, phase));
            let cfg = base
                .clone()
                .with_checkpoint(CheckpointPolicy::EveryK(3))
                .with_fault_plan(Arc::clone(&plan));
            let faulted = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(plan.fired(), 1, "{mode:?}/{phase:?}: fault did not fire");
            assert_equivalent(&clean, &faulted, &format!("{mode:?}/{phase:?}"));
            if phase != FaultPhase::Load {
                assert!(faulted.metrics.recovery.rollbacks >= 1);
            }
        }
    }
}

/// SSSP (min-combined messages, push mode and the pull baseline with its
/// LRU cache) also recovers bit-identically — distances, including
/// `inf` for unreachable vertices, survive the rollback untouched.
#[test]
fn sssp_push_and_pull_recover_bit_identical() {
    let g = sssp_graph();
    let program = Sssp::new(VertexId(0));
    for mode in [Mode::Push, Mode::Pull] {
        let base = JobConfig::new(mode, 3).with_buffer(96);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        let plan = Arc::new(FaultPlan::new().kill(0, 3, FaultPhase::Barrier));
        let cfg = base
            .with_checkpoint(CheckpointPolicy::EveryK(2))
            .with_fault_plan(Arc::clone(&plan));
        let faulted = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        assert_eq!(plan.fired(), 1, "{mode:?}: fault did not fire");
        assert_eq!(
            bits32(&clean.values),
            bits32(&faulted.values),
            "{mode:?}: distances diverged after recovery"
        );
        assert!(faulted.metrics.recovery.rollbacks >= 1);
    }
}

/// The same seed must produce the same failure schedule, the same
/// recovery trace, and the same (bit-identical) results — the property
/// that makes failure reproductions debuggable.
#[test]
fn seeded_fault_injection_is_deterministic() {
    let g = pagerank_graph();
    let program = PageRank::new(10);
    let run = |seed: u64| {
        let plan = Arc::new(FaultPlan::random(seed, 4, 8, 2));
        let cfg = JobConfig::new(Mode::Hybrid, 4)
            .with_buffer(256)
            .with_checkpoint(CheckpointPolicy::EveryK(2))
            .with_fault_plan(plan);
        run_job(Arc::new(program.clone()), &g, cfg).unwrap()
    };
    let a = run(0xFA11);
    let b = run(0xFA11);
    assert_eq!(bits(&a.values), bits(&b.values));
    assert_eq!(a.metrics.recovery.failures, b.metrics.recovery.failures);
    assert_eq!(a.metrics.recovery.rollbacks, b.metrics.recovery.rollbacks);
    assert_eq!(
        a.metrics.recovery.recomputed_supersteps,
        b.metrics.recovery.recomputed_supersteps
    );
    assert_eq!(
        a.metrics.recovery.checkpoint_bytes,
        b.metrics.recovery.checkpoint_bytes
    );
    assert_eq!(a.metrics.steps.len(), b.metrics.steps.len());
    for (x, y) in a.metrics.steps.iter().zip(&b.metrics.steps) {
        assert_eq!(x.sem, y.sem, "superstep {} semantic bytes", x.superstep);
    }
}

/// The adaptive (Young-style) policy spaces checkpoints by the modeled
/// cost ratio and still recovers bit-identically.
#[test]
fn adaptive_policy_checkpoints_and_recovers() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    let base = JobConfig::new(Mode::BPull, 3).with_buffer(128);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();

    let plan = Arc::new(FaultPlan::new().kill(1, 6, FaultPhase::Compute));
    let mut cfg = base
        .with_checkpoint(CheckpointPolicy::Adaptive)
        .with_fault_plan(Arc::clone(&plan));
    // A small re-execution-to-overhead ratio forces frequent checkpoints
    // on this small graph.
    cfg.adaptive_checkpoint_factor = 0.01;
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();
    assert_eq!(plan.fired(), 1);
    assert!(faulted.metrics.recovery.checkpoints_taken >= 2);
    assert!(faulted.metrics.recovery.rollbacks >= 1);
    assert_eq!(bits(&clean.values), bits(&faulted.values));
}

/// Exhausting the recovery budget turns the next failure into a typed
/// job error rather than an endless respawn loop.
#[test]
fn recovery_budget_is_enforced() {
    let g = pagerank_graph();
    let plan = Arc::new(FaultPlan::new().kill(0, 2, FaultPhase::Compute).kill(
        1,
        3,
        FaultPhase::Compute,
    ));
    let mut cfg = JobConfig::new(Mode::BPull, 3)
        .with_buffer(128)
        .with_checkpoint(CheckpointPolicy::EveryK(1))
        .with_fault_plan(plan);
    cfg.max_recoveries = 1;
    match run_job(Arc::new(PageRank::new(10)), &g, cfg) {
        Err(JobError::WorkerFailed { worker, .. }) => assert_eq!(worker, 1),
        other => panic!(
            "expected the second failure to exhaust the budget, got {:?}",
            other.map(|r| r.values.len())
        ),
    }
}
