//! Checkpoint/recovery correctness: injected worker failures must leave
//! no trace in the computed values.
//!
//! The engine's executors are order-deterministic (per-sender message
//! accumulators merged in worker order, canonical inbox sorting), so
//! these tests can demand *bit-identical* `f64` results between a
//! fault-free run and a run that lost workers and rolled back — not just
//! agreement within a tolerance.

use hybridgraph::prelude::*;
use hybridgraph_graph::gen;
use std::sync::Arc;

fn pagerank_graph() -> Graph {
    gen::rmat(256, 2048, gen::RmatParams::default(), 11)
}

fn sssp_graph() -> Graph {
    gen::randomize_weights(&gen::uniform(200, 1200, 5), 1.0, 4.0, 6)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn bits32(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Asserts two runs computed bit-identical values and matching semantic
/// I/O per superstep.
fn assert_equivalent(clean: &JobResult<PageRank>, faulted: &JobResult<PageRank>, label: &str) {
    assert_eq!(
        bits(&clean.values),
        bits(&faulted.values),
        "{label}: values diverged after recovery"
    );
    assert_eq!(
        clean.metrics.steps.len(),
        faulted.metrics.steps.len(),
        "{label}: superstep counts diverged"
    );
    for (c, f) in clean.metrics.steps.iter().zip(&faulted.metrics.steps) {
        assert_eq!(c.kind, f.kind, "{label}: superstep {} kind", c.superstep);
        assert_eq!(
            c.sem, f.sem,
            "{label}: superstep {} semantic bytes",
            c.superstep
        );
    }
}

use hybridgraph_core::runner::JobResult;

/// The headline scenario: worker 2 dies at superstep 5 of a 20-superstep
/// hybrid PageRank with checkpoints every 3 supersteps. The job must
/// finish with values bit-identical to a fault-free run, after at least
/// one rollback, with the checkpoint bytes visible as classified
/// sequential writes.
#[test]
fn hybrid_pagerank_recovers_bit_identical_after_kill() {
    let g = pagerank_graph();
    let program = PageRank::new(20);
    let base = JobConfig::new(Mode::Hybrid, 4).with_buffer(256);

    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
    assert_eq!(clean.metrics.recovery.rollbacks, 0);
    assert_eq!(clean.metrics.recovery.checkpoints_taken, 0);

    let plan = Arc::new(FaultPlan::new().kill(2, 5, FaultPhase::Compute));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(3))
        .with_fault_plan(Arc::clone(&plan));
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();

    assert_equivalent(&clean, &faulted, "hybrid pagerank");
    let rec = &faulted.metrics.recovery;
    assert_eq!(plan.fired(), 1, "the kill order must have fired");
    assert_eq!(rec.rollbacks, 1, "one failure, one rollback");
    assert_eq!(rec.confined_recoveries, 0, "logging off: global rollback");
    assert_eq!(rec.checkpoint_restores, 4, "global rollback reloads all 4");
    assert_eq!(rec.failures.len(), 1);
    assert_eq!(rec.failures[0].worker, 2);
    assert_eq!(rec.failures[0].superstep, 5);
    // Rolled back from superstep 5 to the checkpoint at 3: supersteps 4
    // and 5 are re-executed.
    assert_eq!(rec.recomputed_supersteps, 2);
    // Baseline at 0 plus every 3rd superstep, re-taken ones included.
    assert!(rec.checkpoints_taken >= 7, "got {}", rec.checkpoints_taken);
    assert!(rec.checkpoint_bytes > 0);
    // Every checkpoint byte is a classified sequential write.
    assert_eq!(rec.checkpoint_io.seq_write_bytes, rec.checkpoint_bytes);
}

/// Without checkpoints, a worker failure fails the job with a typed
/// error instead of panicking.
#[test]
fn never_policy_fails_fast_with_typed_error() {
    let g = pagerank_graph();
    let plan = Arc::new(FaultPlan::new().kill(2, 5, FaultPhase::Compute));
    let cfg = JobConfig::new(Mode::Hybrid, 4)
        .with_buffer(256)
        .with_fault_plan(plan);
    match run_job(Arc::new(PageRank::new(20)), &g, cfg) {
        Err(JobError::WorkerFailed {
            worker,
            superstep,
            error,
        }) => {
            assert_eq!(worker, 2);
            assert_eq!(superstep, 5);
            assert!(error.contains("injected fault"), "got: {error}");
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("job must not survive an unrecoverable failure"),
    }
}

/// Kills in every lifecycle phase — loading, before compute, and at the
/// barrier — must all recover to bit-identical values, in both b-pull
/// and hybrid modes.
#[test]
fn every_phase_and_mode_recovers() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    for mode in [Mode::BPull, Mode::Hybrid] {
        let base = JobConfig::new(mode, 3).with_buffer(128);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        for phase in FaultPhase::ALL {
            let superstep = match phase {
                FaultPhase::Load => 0,
                _ => 4,
            };
            let plan = Arc::new(FaultPlan::new().kill(1, superstep, phase));
            let cfg = base
                .clone()
                .with_checkpoint(CheckpointPolicy::EveryK(3))
                .with_fault_plan(Arc::clone(&plan));
            let faulted = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(plan.fired(), 1, "{mode:?}/{phase:?}: fault did not fire");
            assert_equivalent(&clean, &faulted, &format!("{mode:?}/{phase:?}"));
            if phase != FaultPhase::Load {
                assert!(faulted.metrics.recovery.rollbacks >= 1);
            }
        }
    }
}

/// SSSP (min-combined messages, push mode and the pull baseline with its
/// LRU cache) also recovers bit-identically — distances, including
/// `inf` for unreachable vertices, survive the rollback untouched.
#[test]
fn sssp_push_and_pull_recover_bit_identical() {
    let g = sssp_graph();
    let program = Sssp::new(VertexId(0));
    for mode in [Mode::Push, Mode::Pull] {
        let base = JobConfig::new(mode, 3).with_buffer(96);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        let plan = Arc::new(FaultPlan::new().kill(0, 3, FaultPhase::Barrier));
        let cfg = base
            .with_checkpoint(CheckpointPolicy::EveryK(2))
            .with_fault_plan(Arc::clone(&plan));
        let faulted = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        assert_eq!(plan.fired(), 1, "{mode:?}: fault did not fire");
        assert_eq!(
            bits32(&clean.values),
            bits32(&faulted.values),
            "{mode:?}: distances diverged after recovery"
        );
        assert!(faulted.metrics.recovery.rollbacks >= 1);
    }
}

/// The same seed must produce the same failure schedule, the same
/// recovery trace, and the same (bit-identical) results — the property
/// that makes failure reproductions debuggable.
#[test]
fn seeded_fault_injection_is_deterministic() {
    let g = pagerank_graph();
    let program = PageRank::new(10);
    let run = |seed: u64| {
        let plan = Arc::new(FaultPlan::random(seed, 4, 8, 2));
        let cfg = JobConfig::new(Mode::Hybrid, 4)
            .with_buffer(256)
            .with_checkpoint(CheckpointPolicy::EveryK(2))
            .with_fault_plan(plan);
        run_job(Arc::new(program.clone()), &g, cfg).unwrap()
    };
    let a = run(0xFA11);
    let b = run(0xFA11);
    assert_eq!(bits(&a.values), bits(&b.values));
    assert_eq!(a.metrics.recovery.failures, b.metrics.recovery.failures);
    assert_eq!(a.metrics.recovery.rollbacks, b.metrics.recovery.rollbacks);
    assert_eq!(
        a.metrics.recovery.recomputed_supersteps,
        b.metrics.recovery.recomputed_supersteps
    );
    assert_eq!(
        a.metrics.recovery.checkpoint_bytes,
        b.metrics.recovery.checkpoint_bytes
    );
    assert_eq!(a.metrics.steps.len(), b.metrics.steps.len());
    for (x, y) in a.metrics.steps.iter().zip(&b.metrics.steps) {
        assert_eq!(x.sem, y.sem, "superstep {} semantic bytes", x.superstep);
    }
}

/// The adaptive (Young-style) policy spaces checkpoints by the modeled
/// cost ratio and still recovers bit-identically.
#[test]
fn adaptive_policy_checkpoints_and_recovers() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    let base = JobConfig::new(Mode::BPull, 3).with_buffer(128);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();

    let plan = Arc::new(FaultPlan::new().kill(1, 6, FaultPhase::Compute));
    let mut cfg = base
        .with_checkpoint(CheckpointPolicy::Adaptive)
        .with_fault_plan(Arc::clone(&plan));
    // A small re-execution-to-overhead ratio forces frequent checkpoints
    // on this small graph.
    cfg.adaptive_checkpoint_factor = 0.01;
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();
    assert_eq!(plan.fired(), 1);
    assert!(faulted.metrics.recovery.checkpoints_taken >= 2);
    assert!(faulted.metrics.recovery.rollbacks >= 1);
    assert_eq!(bits(&clean.values), bits(&faulted.values));
}

/// Per-superstep byte parity between two runs, stronger than
/// [`assert_equivalent`]: every cost-model input — semantic bytes,
/// classified I/O, and all logical network counters — must match to the
/// byte. Retransmissions, duplicates, and replayed log traffic live in
/// separate overhead counters and therefore must never perturb these.
fn assert_byte_parity(clean: &JobMetrics, other: &JobMetrics, label: &str) {
    assert_eq!(
        clean.steps.len(),
        other.steps.len(),
        "{label}: superstep counts diverged"
    );
    for (c, f) in clean.steps.iter().zip(&other.steps) {
        let s = c.superstep;
        assert_eq!(c.kind, f.kind, "{label}: superstep {s} kind");
        assert_eq!(c.sem, f.sem, "{label}: superstep {s} semantic bytes");
        assert_eq!(c.io, f.io, "{label}: superstep {s} classified I/O");
        assert_eq!(
            c.net_out_bytes, f.net_out_bytes,
            "{label}: superstep {s} remote bytes"
        );
        assert_eq!(
            c.net_local_bytes, f.net_local_bytes,
            "{label}: superstep {s} loopback bytes"
        );
        assert_eq!(
            c.net_raw_messages, f.net_raw_messages,
            "{label}: superstep {s} raw messages"
        );
        assert_eq!(
            c.net_wire_values, f.net_wire_values,
            "{label}: superstep {s} wire values"
        );
        assert_eq!(
            c.net_saved_messages, f.net_saved_messages,
            "{label}: superstep {s} saved messages (M_co)"
        );
        assert_eq!(
            c.net_requests, f.net_requests,
            "{label}: superstep {s} pull requests"
        );
        assert_eq!(
            c.cio_push_bytes, f.cio_push_bytes,
            "{label}: superstep {s} C_io push bytes"
        );
        assert_eq!(
            c.cio_bpull_bytes, f.cio_bpull_bytes,
            "{label}: superstep {s} C_io b-pull bytes"
        );
        assert_eq!(
            c.q_metric.to_bits(),
            f.q_metric.to_bits(),
            "{label}: superstep {s} Q_t"
        );
    }
}

/// Seeded drop/duplicate/delay faults on every link must be fully
/// absorbed by the ARQ layer: PageRank over push, b-pull, and hybrid
/// finishes bit-identical to a lossless run, with *zero* deviation in
/// any cost-model byte counter — the lossy wire shows up only in the
/// overhead counters.
#[test]
fn unreliable_network_matrix_pagerank() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let base = JobConfig::new(mode, 4).with_buffer(256);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        for (label, net) in [
            ("drops", NetFaultPlan::new(0xD201).with_drops(100, 3)),
            ("dups", NetFaultPlan::new(0xD202).with_duplicates(150)),
            ("delays", NetFaultPlan::new(0xD203).with_delays(120, 1)),
            (
                "mixed",
                NetFaultPlan::new(0xD204)
                    .with_drops(60, 2)
                    .with_duplicates(60)
                    .with_delays(40, 1),
            ),
        ] {
            let tag = format!("{mode:?}/{label}");
            let net = Arc::new(net);
            let plan = Arc::new(FaultPlan::new().with_net(Arc::clone(&net)));
            let cfg = base.clone().with_fault_plan(plan);
            let lossy = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
            assert_eq!(
                bits(&clean.values),
                bits(&lossy.values),
                "{tag}: values diverged under an unreliable network"
            );
            assert_byte_parity(&clean.metrics, &lossy.metrics, &tag);
            let fired = net.drops_fired() + net.duplicates_fired() + net.delays_fired();
            assert!(fired > 0, "{tag}: the fault schedule never fired");
            let ov = &lossy.metrics.net_overhead;
            match label {
                "drops" => assert!(
                    ov.dropped_frames > 0 && ov.retransmitted_bytes > 0,
                    "{tag}: drops must surface as retransmissions"
                ),
                "dups" => assert!(
                    ov.duplicate_drops > 0,
                    "{tag}: duplicates must be discarded by receivers"
                ),
                "delays" => assert!(ov.delayed_frames > 0, "{tag}: delays must fire"),
                _ => {}
            }
            assert_eq!(
                lossy.metrics.recovery.rollbacks, 0,
                "{tag}: wire faults alone must never trigger recovery"
            );
        }
    }
}

/// The same matrix for SSSP's min-combined `f32` distances.
#[test]
fn unreliable_network_matrix_sssp() {
    let g = sssp_graph();
    let program = Sssp::new(VertexId(0));
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let base = JobConfig::new(mode, 3).with_buffer(128);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        let net = Arc::new(
            NetFaultPlan::new(0x55517 + mode as u64)
                .with_drops(80, 2)
                .with_duplicates(80)
                .with_delays(50, 1),
        );
        let plan = Arc::new(FaultPlan::new().with_net(net));
        let lossy = run_job(Arc::new(program.clone()), &g, base.with_fault_plan(plan)).unwrap();
        assert_eq!(
            bits32(&clean.values),
            bits32(&lossy.values),
            "{mode:?}: distances diverged under an unreliable network"
        );
        assert_byte_parity(&clean.metrics, &lossy.metrics, &format!("sssp {mode:?}"));
    }
}

/// The PR's acceptance scenario: a seeded schedule dropping a healthy
/// share of data packets *and* a worker killed mid-job. With message
/// logging on, the hybrid PageRank run must finish bit-identical to the
/// fault-free run via *confined* recovery: only the dead worker reloads
/// a checkpoint, survivors never roll back, and every reported
/// cost-model byte count matches the lossless run to the byte.
#[test]
fn confined_recovery_under_lossy_network_acceptance() {
    let g = pagerank_graph();
    let program = PageRank::new(20);
    let base = JobConfig::new(Mode::Hybrid, 4).with_buffer(256);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();

    let net = Arc::new(NetFaultPlan::new(0xACCE97).with_drops(80, 2));
    let plan = Arc::new(
        FaultPlan::new()
            .kill(2, 5, FaultPhase::Compute)
            .with_net(Arc::clone(&net)),
    );
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(3))
        .with_fault_plan(Arc::clone(&plan))
        .with_message_logging(true);
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();

    assert_eq!(
        bits(&clean.values),
        bits(&faulted.values),
        "confined recovery must be value-transparent"
    );
    assert_byte_parity(&clean.metrics, &faulted.metrics, "acceptance");

    let rec = &faulted.metrics.recovery;
    assert_eq!(plan.fired(), 1, "the kill order must have fired");
    assert!(net.drops_fired() > 0, "the drop schedule must have fired");
    assert_eq!(rec.confined_recoveries, 1, "exactly one confined recovery");
    assert_eq!(rec.rollbacks, 0, "survivors must never roll back globally");
    assert_eq!(
        rec.checkpoint_restores, 1,
        "only the dead worker reloads its checkpoint"
    );
    // Killed at 5 with the cut at 3: superstep 4 replays from logs, 5
    // re-executes live.
    assert_eq!(rec.replayed_supersteps, 1);
    assert_eq!(rec.recomputed_supersteps, 1);
    assert!(rec.msg_log_bytes > 0, "logging must have written segments");
    let ov = &faulted.metrics.net_overhead;
    assert!(
        ov.retransmitted_bytes > 0,
        "drops must cost retransmissions"
    );
    assert!(
        ov.replayed_bytes > 0,
        "survivors must re-serve logged packets"
    );
}

/// Confined recovery in the standalone modes: push (kill at the barrier,
/// so survivors revert a *completed* superstep) and b-pull (kill before
/// compute, so survivors unwind an aborted one).
#[test]
fn confined_recovery_per_mode() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    for (mode, phase) in [
        (Mode::Push, FaultPhase::Barrier),
        (Mode::BPull, FaultPhase::Compute),
        (Mode::Push, FaultPhase::Compute),
        (Mode::BPull, FaultPhase::Barrier),
    ] {
        let tag = format!("{mode:?}/{phase:?}");
        let base = JobConfig::new(mode, 3).with_buffer(128);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        let plan = Arc::new(FaultPlan::new().kill(1, 5, phase));
        let cfg = base
            .with_checkpoint(CheckpointPolicy::EveryK(3))
            .with_fault_plan(Arc::clone(&plan))
            .with_message_logging(true);
        let faulted = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        assert_eq!(plan.fired(), 1, "{tag}: fault did not fire");
        assert_eq!(
            bits(&clean.values),
            bits(&faulted.values),
            "{tag}: values diverged after confined recovery"
        );
        assert_byte_parity(&clean.metrics, &faulted.metrics, &tag);
        let rec = &faulted.metrics.recovery;
        assert_eq!(rec.confined_recoveries, 1, "{tag}");
        assert_eq!(rec.rollbacks, 0, "{tag}");
        assert_eq!(rec.checkpoint_restores, 1, "{tag}");
    }
}

/// SSSP also recovers confined, exercising min-combining over the replay
/// path.
#[test]
fn confined_recovery_sssp() {
    let g = sssp_graph();
    let program = Sssp::new(VertexId(0));
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let base = JobConfig::new(mode, 3).with_buffer(96);
        let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
        let plan = Arc::new(FaultPlan::new().kill(0, 3, FaultPhase::Barrier));
        let cfg = base
            .with_checkpoint(CheckpointPolicy::EveryK(2))
            .with_fault_plan(Arc::clone(&plan))
            .with_message_logging(true);
        let faulted = run_job(Arc::new(program.clone()), &g, cfg).unwrap();
        assert_eq!(plan.fired(), 1, "{mode:?}: fault did not fire");
        assert_eq!(
            bits32(&clean.values),
            bits32(&faulted.values),
            "{mode:?}: distances diverged after confined recovery"
        );
        let rec = &faulted.metrics.recovery;
        assert_eq!(rec.confined_recoveries, 1, "{mode:?}");
        assert_eq!(rec.rollbacks, 0, "{mode:?}");
    }
}

/// The pull baseline's LRU receive state is not undoable in memory, so
/// even with logging on it must fall back to the global rollback — and
/// still end bit-identical.
#[test]
fn pull_mode_falls_back_to_global_rollback() {
    let g = sssp_graph();
    let program = Sssp::new(VertexId(0));
    let base = JobConfig::new(Mode::Pull, 3).with_buffer(96);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
    let plan = Arc::new(FaultPlan::new().kill(0, 3, FaultPhase::Barrier));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(2))
        .with_fault_plan(Arc::clone(&plan))
        .with_message_logging(true);
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();
    assert_eq!(plan.fired(), 1);
    assert_eq!(bits32(&clean.values), bits32(&faulted.values));
    let rec = &faulted.metrics.recovery;
    assert_eq!(rec.confined_recoveries, 0, "pull must not go confined");
    assert_eq!(rec.rollbacks, 1);
    assert_eq!(rec.checkpoint_restores, 3, "global rollback reloads all 3");
}

/// Two workers dying in the same superstep exceed what one set of logs
/// can reconstruct; the master must fall back to the global rollback.
#[test]
fn simultaneous_failures_fall_back_to_global_rollback() {
    let g = pagerank_graph();
    let program = PageRank::new(12);
    let base = JobConfig::new(Mode::BPull, 4).with_buffer(256);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
    let plan = Arc::new(FaultPlan::new().kill(0, 4, FaultPhase::Compute).kill(
        2,
        4,
        FaultPhase::Compute,
    ));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(2))
        .with_fault_plan(Arc::clone(&plan))
        .with_message_logging(true);
    let faulted = run_job(Arc::new(program), &g, cfg).unwrap();
    assert_eq!(plan.fired(), 2, "both kill orders must fire");
    assert_eq!(bits(&clean.values), bits(&faulted.values));
    let rec = &faulted.metrics.recovery;
    assert_eq!(rec.confined_recoveries, 0, "two deaths: not confined");
    assert_eq!(rec.rollbacks, 1);
    assert_eq!(rec.checkpoint_restores, 4);
}

/// Seed-driven stress: a random kill schedule layered over a lossy wire.
/// `HG_FAULT_SEED` (set by the CI fault-stress job) selects the
/// schedule; every seed must converge to the fault-free fixed point
/// bit-identically. The seed is printed so a failure reproduces with
/// `HG_FAULT_SEED=<n> cargo test --test fault_recovery seeded_stress`.
#[test]
fn seeded_stress_survives_kills_and_lossy_wire() {
    let seed: u64 = std::env::var("HG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    println!("HG_FAULT_SEED={seed}");
    let g = pagerank_graph();
    let program = PageRank::new(14);
    let base = JobConfig::new(Mode::Hybrid, 3).with_buffer(192);
    let clean = run_job(Arc::new(program.clone()), &g, base.clone()).unwrap();
    let net = Arc::new(
        NetFaultPlan::new(seed ^ 0x9e3779b97f4a7c15)
            .with_drops(70, 2)
            .with_duplicates(50)
            .with_delays(30, 1),
    );
    let plan = Arc::new(FaultPlan::random(seed, 3, 10, 2).with_net(net));
    let cfg = base
        .with_checkpoint(CheckpointPolicy::EveryK(2))
        .with_fault_plan(Arc::clone(&plan))
        .with_message_logging(true);
    let faulted = run_job(Arc::new(program), &g, cfg)
        .unwrap_or_else(|e| panic!("seed {seed}: job failed to recover: {e}"));
    assert_eq!(
        bits(&clean.values),
        bits(&faulted.values),
        "seed {seed}: values diverged after recovery"
    );
    assert_byte_parity(&clean.metrics, &faulted.metrics, &format!("seed {seed}"));
}

/// Exhausting the recovery budget turns the next failure into a typed
/// job error rather than an endless respawn loop.
#[test]
fn recovery_budget_is_enforced() {
    let g = pagerank_graph();
    let plan = Arc::new(FaultPlan::new().kill(0, 2, FaultPhase::Compute).kill(
        1,
        3,
        FaultPhase::Compute,
    ));
    let mut cfg = JobConfig::new(Mode::BPull, 3)
        .with_buffer(128)
        .with_checkpoint(CheckpointPolicy::EveryK(1))
        .with_fault_plan(plan);
    cfg.max_recoveries = 1;
    match run_job(Arc::new(PageRank::new(10)), &g, cfg) {
        Err(JobError::WorkerFailed { worker, .. }) => assert_eq!(worker, 1),
        other => panic!(
            "expected the second failure to exhaust the budget, got {:?}",
            other.map(|r| r.values.len())
        ),
    }
}
